"""The replicated name server process.

Each :class:`NameServer` is a simulated process holding a replica of
the naming database.  Replicas are kept loosely consistent by

* **eager push** — every accepted write is immediately pushed to peer
  servers (best effort; drops across a partition), and
* **periodic anti-entropy** — a bounded Merkle-prefix descent with one
  peer per gossip tick (PROTOCOLS.md §16): replicas compare subtree
  hashes root-down and ship records only for divergent leaves, which is
  also what reconciles the databases after a partition heals (no
  special heal-detection needed: the first gossip that crosses the
  healed cut *is* the reconciliation).  Identical replicas still
  short-circuit after two messages on the root content hash.

Without a :class:`~repro.naming.sharding.ShardMap` the server is fully
replicated — the paper-faithful configuration, bit-identical to the
pre-sharding protocol.  With one, the server holds **only the shards
it owns** (PROTOCOLS.md §18): pushes go to the record's shard
co-owners, gossip runs only with servers sharing at least one shard
and descends only their common subtrees (short-circuiting on the
scoped hash), client requests for foreign shards are forwarded to an
owner (which answers the client directly), and recovery reloads only
owned shards from the durable store.

After every mutation the server checks for inconsistent mappings and
fires MULTIPLE-MAPPINGS callbacks at the affected LWG-view coordinators.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..runtime.interfaces import NodeId, Runtime
from ..sim.process import Process
from .callbacks import ConflictNotifier
from .database import NamingDatabase
from .messages import (
    MultipleMappings,
    NamingMessage,
    NsRequest,
    NsResponse,
    PushUpdate,
    SyncReply,
    SyncRequest,
)
from .persistence import DurableStore, LoadResult
from .reconciliation import (
    DEFAULT_MAX_SYNC_ROUNDS,
    MerkleSession,
    ReconcileResult,
    SyncDelta,
    absorb,
)
from .records import MappingRecord
from .sharding import ShardMap, shard_of_lwg


class NameServer(Process):
    """One naming-service replica."""

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        peers: Sequence[NodeId] = (),
        gossip_period_us: int = 500_000,
        renotify_period_us: int = 600_000,
        max_sync_rounds: int = DEFAULT_MAX_SYNC_ROUNDS,
        store: Optional[DurableStore] = None,
        shard_map: Optional[ShardMap] = None,
    ):
        super().__init__(env, node)
        #: Namespace partition (PROTOCOLS.md §18); None = full replication.
        self.shard_map = shard_map
        #: Shards this server replicates; None means "everything" (no
        #: shard map, or a map whose replication factor covers the roster).
        self.owned: Optional[FrozenSet[str]] = None
        if shard_map is not None and not shard_map.fully_replicated:
            self.owned = frozenset(shard_map.owned_shards(node))
        #: Durable snapshot+log store; None preserves the legacy
        #: volatile behaviour (the in-memory db survives a sim crash).
        self.store = store
        self.incarnation = 0
        if store is not None:
            restart = store.has_state()
            result = store.load(owned=self.owned)
            self._install_db(result.db)
            if restart:
                # Booting over pre-existing state IS a restart (the
                # asyncio/FileStorage path): bump and recover exactly
                # like the in-sim recovery hook does.
                self.incarnation = store.bump_incarnation()
                store.write_snapshot(self.db)
                self._trace_recovery(result)
            else:
                self.incarnation = store.incarnation()
        else:
            self._install_db(NamingDatabase())
        self.peers: List[NodeId] = [p for p in peers if p != node]
        #: Anti-entropy partners: peers sharing at least one shard with
        #: us (everyone, when fully replicated).
        self._gossip_peers: List[NodeId] = [
            p for p in self.peers
            if shard_map is None or shard_map.scope(node, p)
        ]
        self.notifier = ConflictNotifier(
            server_id=node,
            send=self._send_callback,
            clock=lambda: env.now,
            renotify_period_us=renotify_period_us,
        )
        self._gossip_index = 0
        self._sync_counter = 0
        #: Live descent sessions, keyed by ``(peer, sync_id)``.  At most
        #: one per peer: a new exchange supersedes an unfinished one.
        self._sessions: Dict[Tuple[NodeId, int], MerkleSession] = {}
        self.max_sync_rounds = max_sync_rounds
        self.requests_served = 0
        self.requests_forwarded = 0
        self._forward_index = 0
        self.syncs_started = 0
        self.syncs_short_circuited = 0
        self.syncs_capped = 0
        if self._gossip_peers:
            self.set_periodic(gossip_period_us, self.gossip_tick, jitter_stream=f"ns:{node}")
        self.set_periodic(renotify_period_us, self._notifier_tick)

    def add_peer(self, peer: NodeId) -> None:
        """Introduce another replica (scenario construction helper)."""
        if peer != self.node and peer not in self.peers:
            self.peers.append(peer)
            if self.shard_map is None or self.shard_map.scope(self.node, peer):
                self._gossip_peers.append(peer)

    # ------------------------------------------------------------------
    # Shard scope helpers
    # ------------------------------------------------------------------
    def _scope(self, peer: NodeId) -> Tuple[str, ...]:
        """The Merkle prefixes ``peer`` and we reconcile over."""
        if self.shard_map is None:
            return ("",)
        return self.shard_map.scope(self.node, peer)

    def _accepts(self, record: MappingRecord) -> bool:
        """True if this server stores records of the record's shard."""
        return self.owned is None or shard_of_lwg(record.lwg) in self.owned

    def _session_for(self, peer: NodeId) -> MerkleSession:
        accept = None if self.owned is None else self._accepts
        return MerkleSession(self.db, scope=self._scope(peer), accept=accept)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def on_message(self, src: NodeId, msg: Any, size: int) -> None:
        if isinstance(msg, NsRequest):
            self._serve(src, msg)
        elif isinstance(msg, SyncRequest):
            self._on_sync_request(src, msg)
        elif isinstance(msg, SyncReply):
            self._on_sync_step(src, msg)
        elif isinstance(msg, PushUpdate):
            self._absorb_remote(msg.records, msg.genealogy)

    # ------------------------------------------------------------------
    # Client RPC
    # ------------------------------------------------------------------
    def _serve(self, src: NodeId, msg: NsRequest) -> None:
        if (
            self.owned is not None
            and shard_of_lwg(msg.lwg) not in self.owned
            and not msg.forwarded
        ):
            # Not ours: relay to one of the shard's owners, which will
            # answer the client directly.  Already-forwarded requests
            # are served wherever they land so relaying cannot loop.
            self._forward(msg)
            return
        self.requests_served += 1
        if msg.op == "set":
            assert msg.record is not None
            if self.db.apply(msg.record, msg.parents):
                self._push_write(msg)
        elif msg.op == "testset":
            assert msg.record is not None
            existing = self.db.live_records(msg.record.lwg)
            if not existing:
                # No live mapping known here: install the proposal.
                if self.db.apply(msg.record, msg.parents):
                    self._push_write(msg)
        elif msg.op == "unset":
            assert msg.record is not None
            if self.db.apply(msg.record, msg.parents):
                self._push_write(msg)
        elif msg.op != "read":
            raise ValueError(f"unknown naming op {msg.op!r}")
        records = tuple(self.db.live_records(msg.lwg))
        response = NsResponse(request_id=msg.request_id, server=self.node, records=records)
        # Reply straight to the requesting client — identical to ``src``
        # for direct requests, and the right recipient for forwarded ones.
        self.send(msg.client, response, response.size_bytes())
        self.notifier.check(self.db)

    def _forward(self, msg: NsRequest) -> None:
        assert self.shard_map is not None
        owners = self.shard_map.owners_for_lwg(msg.lwg)
        target = owners[self._forward_index % len(owners)]
        self._forward_index += 1
        self.requests_forwarded += 1
        forwarded = replace(msg, forwarded=True)
        self.env.tracer.emit(
            "naming",
            "request_forwarded",
            server=self.node,
            owner=target,
            lwg=msg.lwg,
            op=msg.op,
        )
        self.send(target, forwarded, forwarded.size_bytes())

    def _push_write(self, msg: NsRequest) -> None:
        assert msg.record is not None
        if self.shard_map is None:
            targets = set(self.peers)
        else:
            targets = {
                owner
                for owner in self.shard_map.owners_for_lwg(msg.record.lwg)
                if owner != self.node
            }
        if not targets:
            return
        parents = {msg.record.lwg_view: tuple(msg.parents)} if msg.parents else {}
        push = PushUpdate(sender=self.node, records=(msg.record,), genealogy=parents)
        self.multicast(targets, push, push.size_bytes())

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def gossip_tick(self) -> None:
        """Open a Merkle descent with the next gossip peer (round-robin)."""
        if not self._gossip_peers:
            return
        peer = self._gossip_peers[self._gossip_index % len(self._gossip_peers)]
        self._gossip_index += 1
        # A fresh exchange supersedes any unfinished session with this
        # peer (e.g. one cut short by a partition or the round cap).
        for key in [k for k in self._sessions if k[0] == peer]:
            del self._sessions[key]
        self._sync_counter += 1
        self.syncs_started += 1
        session = self._session_for(peer)
        delta = session.opener()
        self._sessions[(peer, self._sync_counter)] = session
        request = SyncRequest(
            sender=self.node,
            sync_id=self._sync_counter,
            db_hash=self.db.scope_hash(self._scope(peer)),
            expansions=delta.expansions,
            genealogy_children=delta.genealogy_children,
        )
        self.send(peer, request, request.size_bytes())

    def _on_sync_request(self, src: NodeId, msg: SyncRequest) -> None:
        if msg.db_hash and msg.db_hash == self.db.scope_hash(self._scope(src)):
            # Identical databases over the shared scope: nothing to
            # ship in either direction.
            self.syncs_short_circuited += 1
            ack = SyncReply(sender=self.node, sync_id=msg.sync_id, in_sync=True)
            self.send(src, ack, ack.size_bytes())
            return
        for key in [k for k in self._sessions if k[0] == src and k[1] != msg.sync_id]:
            del self._sessions[key]
        session = self._session_for(src)
        self._sessions[(src, msg.sync_id)] = session
        out = session.handle(
            SyncDelta(
                expansions=msg.expansions,
                genealogy_children=msg.genealogy_children,
            )
        )
        self._note_absorb(session.last_absorb)
        if out is None:
            # Hashes differed but the opener alone resolved it (cannot
            # happen today — the opener always invites a genealogy
            # reply — but kept as a safe exit).
            del self._sessions[(src, msg.sync_id)]
            return
        self._send_step(src, msg.sync_id, 1, out)

    def _on_sync_step(self, src: NodeId, msg: SyncReply) -> None:
        if msg.in_sync:
            self._sessions.pop((src, msg.sync_id), None)
            return
        session = self._sessions.get((src, msg.sync_id))
        if session is None:
            if msg.round_no > self.max_sync_rounds:
                # Refuse to resurrect a capped/stale session forever.
                return
            # Step for a session we no longer track (superseded, or we
            # crashed mid-descent).  Every step is self-describing, so a
            # fresh session answers it correctly.
            session = self._session_for(src)
            self._sessions[(src, msg.sync_id)] = session
        out = session.handle(
            SyncDelta(
                expansions=msg.expansions,
                leaf_digests=msg.leaf_digests,
                records=msg.records,
                genealogy=msg.genealogy,
                genealogy_children=msg.genealogy_children,
            )
        )
        self._note_absorb(session.last_absorb)
        if out is None:
            # Converged: nothing left to ship from this side.
            del self._sessions[(src, msg.sync_id)]
            return
        if msg.round_no + 1 > self.max_sync_rounds:
            # Round cap: drop the session without replying; the next
            # gossip tick restarts from the (strictly closer) new state.
            self.syncs_capped += 1
            self.env.tracer.emit(
                "naming", "sync_round_cap", server=self.node, peer=src, sync_id=msg.sync_id
            )
            del self._sessions[(src, msg.sync_id)]
            return
        self._send_step(src, msg.sync_id, msg.round_no + 1, out)

    def _send_step(self, peer: NodeId, sync_id: int, round_no: int, delta: SyncDelta) -> None:
        reply = SyncReply(
            sender=self.node,
            sync_id=sync_id,
            round_no=round_no,
            expansions=delta.expansions,
            leaf_digests=delta.leaf_digests,
            records=delta.records,
            genealogy=delta.genealogy,
            genealogy_children=delta.genealogy_children,
        )
        self.send(peer, reply, reply.size_bytes())

    def on_crash(self) -> None:
        # In-flight descents die with the process; peers' stale steps
        # after recovery are answered by fresh self-describing sessions.
        self._sessions.clear()

    def on_recover(self) -> None:
        if self.store is None:
            return
        # The volatile database died with the process: rebuild it from
        # the durable areas (quarantining any corruption), bump the
        # durable incarnation so this life is distinguishable from the
        # last one, and compact to a fresh snapshot so the reloaded log
        # is not replayed twice.  Whatever the log lost, the next
        # Merkle-descent gossip re-reconciles from the peers.
        result = self.store.load(owned=self.owned)
        self._install_db(result.db)
        self.incarnation = self.store.bump_incarnation(at_least=self.incarnation)
        self.store.write_snapshot(self.db)
        self._trace_recovery(result)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def _install_db(self, db: NamingDatabase) -> None:
        """Adopt ``db`` as the live replica and wire every hook to it."""
        self.db = db
        db.on_edge = self._trace_edge
        db.on_gc = self._trace_gc
        if self.store is not None:
            self.store.attach(db)

    def _trace_recovery(self, result: LoadResult) -> None:
        self.env.tracer.emit(
            "recovery",
            "server_recovered",
            server=self.node,
            incarnation=self.incarnation,
            records=len(self.db),
            snapshot_used=result.snapshot_used,
            log_entries=result.log_entries,
            quarantined=result.quarantined,
            truncated=result.log_truncated or result.snapshot_rejected,
        )

    def _absorb_remote(self, records, genealogy) -> None:
        if self.owned is not None:
            # Drop pushes for shards we do not own (a stale or foreign
            # sender); the genealogy still merges — it is global.
            records = tuple(r for r in records if self._accepts(r))
        self._note_absorb(absorb(self.db, records, genealogy))

    def _note_absorb(self, result: ReconcileResult) -> None:
        if result.applied or result.gc_removed:
            self.env.tracer.emit(
                "naming",
                "reconciled",
                server=self.node,
                applied=result.applied,
                gc_removed=result.gc_removed,
                lwgs=sorted(result.touched_lwgs),
            )
        self.notifier.check(self.db)

    # ------------------------------------------------------------------
    # Database observation hooks (consumed by the invariant checkers)
    # ------------------------------------------------------------------
    def _trace_edge(self, child, parents) -> None:
        self.env.tracer.emit(
            "naming",
            "genealogy_edge",
            server=self.node,
            child=str(child),
            parents=[str(p) for p in parents],
        )

    def _trace_gc(self, lwg, view, witness) -> None:
        self.env.tracer.emit(
            "naming",
            "record_gc",
            server=self.node,
            lwg=lwg,
            view=str(view),
            witness=str(witness),
        )

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def _send_callback(self, target: NodeId, message: MultipleMappings) -> None:
        self.env.tracer.emit(
            "naming", "multiple_mappings", server=self.node, lwg=message.lwg, target=target
        )
        self.send(target, message, message.size_bytes())

    def _notifier_tick(self) -> None:
        self.notifier.check(self.db)
