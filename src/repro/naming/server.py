"""The replicated name server process.

Each :class:`NameServer` is a simulated process holding a full replica
of the naming database.  Replicas are kept loosely consistent by

* **eager push** — every accepted write is immediately pushed to all
  peer servers (best effort; drops across a partition), and
* **periodic anti-entropy** — a three-message push-pull digest exchange
  with one peer per gossip tick, which is also what reconciles the
  databases after a partition heals (no special heal-detection needed:
  the first gossip that crosses the healed cut *is* the reconciliation).

After every mutation the server checks for inconsistent mappings and
fires MULTIPLE-MAPPINGS callbacks at the affected LWG-view coordinators.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..runtime.interfaces import NodeId, Runtime
from ..sim.process import Process
from .callbacks import ConflictNotifier
from .database import NamingDatabase
from .messages import (
    MultipleMappings,
    NamingMessage,
    NsRequest,
    NsResponse,
    PushUpdate,
    SyncReply,
    SyncRequest,
    SyncUpdate,
)
from .reconciliation import absorb, genealogy_to_send, records_to_send


class NameServer(Process):
    """One naming-service replica."""

    def __init__(
        self,
        env: Runtime,
        node: NodeId,
        peers: Sequence[NodeId] = (),
        gossip_period_us: int = 500_000,
        renotify_period_us: int = 600_000,
    ):
        super().__init__(env, node)
        self.db = NamingDatabase()
        self.db.on_edge = self._trace_edge
        self.db.on_gc = self._trace_gc
        self.peers: List[NodeId] = [p for p in peers if p != node]
        self.notifier = ConflictNotifier(
            server_id=node,
            send=self._send_callback,
            clock=lambda: env.now,
            renotify_period_us=renotify_period_us,
        )
        self._gossip_index = 0
        self._sync_counter = 0
        self.requests_served = 0
        self.syncs_started = 0
        self.syncs_short_circuited = 0
        if self.peers:
            self.set_periodic(gossip_period_us, self.gossip_tick, jitter_stream=f"ns:{node}")
        self.set_periodic(renotify_period_us, self._notifier_tick)

    def add_peer(self, peer: NodeId) -> None:
        """Introduce another replica (scenario construction helper)."""
        if peer != self.node and peer not in self.peers:
            self.peers.append(peer)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def on_message(self, src: NodeId, msg: Any, size: int) -> None:
        if isinstance(msg, NsRequest):
            self._serve(src, msg)
        elif isinstance(msg, SyncRequest):
            self._on_sync_request(src, msg)
        elif isinstance(msg, SyncReply):
            self._on_sync_reply(src, msg)
        elif isinstance(msg, (SyncUpdate, PushUpdate)):
            self._absorb_remote(msg.records, msg.genealogy)

    # ------------------------------------------------------------------
    # Client RPC
    # ------------------------------------------------------------------
    def _serve(self, src: NodeId, msg: NsRequest) -> None:
        self.requests_served += 1
        if msg.op == "set":
            assert msg.record is not None
            if self.db.apply(msg.record, msg.parents):
                self._push_write(msg)
        elif msg.op == "testset":
            assert msg.record is not None
            existing = self.db.live_records(msg.record.lwg)
            if not existing:
                # No live mapping known here: install the proposal.
                if self.db.apply(msg.record, msg.parents):
                    self._push_write(msg)
        elif msg.op == "unset":
            assert msg.record is not None
            if self.db.apply(msg.record, msg.parents):
                self._push_write(msg)
        elif msg.op != "read":
            raise ValueError(f"unknown naming op {msg.op!r}")
        records = tuple(self.db.live_records(msg.lwg))
        response = NsResponse(request_id=msg.request_id, server=self.node, records=records)
        self.send(src, response, response.size_bytes())
        self.notifier.check(self.db)

    def _push_write(self, msg: NsRequest) -> None:
        if not self.peers:
            return
        assert msg.record is not None
        parents = {msg.record.lwg_view: tuple(msg.parents)} if msg.parents else {}
        push = PushUpdate(sender=self.node, records=(msg.record,), genealogy=parents)
        self.multicast(set(self.peers), push, push.size_bytes())

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def gossip_tick(self) -> None:
        """Start a push-pull exchange with the next peer (round-robin)."""
        if not self.peers:
            return
        peer = self.peers[self._gossip_index % len(self.peers)]
        self._gossip_index += 1
        self._sync_counter += 1
        self.syncs_started += 1
        request = SyncRequest(
            sender=self.node,
            sync_id=self._sync_counter,
            digest=self.db.digest(),
            genealogy_children=tuple(self.db.genealogy_edges()),
            db_hash=self.db.content_hash(),
        )
        self.send(peer, request, request.size_bytes())

    def _on_sync_request(self, src: NodeId, msg: SyncRequest) -> None:
        if msg.db_hash and msg.db_hash == self.db.content_hash():
            # Identical databases: nothing to ship in either direction.
            self.syncs_short_circuited += 1
            ack = SyncReply(sender=self.node, sync_id=msg.sync_id, in_sync=True)
            self.send(src, ack, ack.size_bytes())
            return
        reply = SyncReply(
            sender=self.node,
            sync_id=msg.sync_id,
            records=tuple(records_to_send(self.db, msg.digest)),
            genealogy=genealogy_to_send(self.db, msg.genealogy_children),
            digest=self.db.digest(),
            genealogy_children=tuple(self.db.genealogy_edges()),
        )
        self.send(src, reply, reply.size_bytes())

    def _on_sync_reply(self, src: NodeId, msg: SyncReply) -> None:
        if msg.in_sync:
            return
        self._absorb_remote(msg.records, msg.genealogy)
        update = SyncUpdate(
            sender=self.node,
            sync_id=msg.sync_id,
            records=tuple(records_to_send(self.db, msg.digest)),
            genealogy=genealogy_to_send(self.db, msg.genealogy_children),
        )
        if update.records or update.genealogy:
            self.send(src, update, update.size_bytes())

    def _absorb_remote(self, records, genealogy) -> None:
        result = absorb(self.db, records, genealogy)
        if result.applied or result.gc_removed:
            self.env.tracer.emit(
                "naming",
                "reconciled",
                server=self.node,
                applied=result.applied,
                gc_removed=result.gc_removed,
                lwgs=sorted(result.touched_lwgs),
            )
        self.notifier.check(self.db)

    # ------------------------------------------------------------------
    # Database observation hooks (consumed by the invariant checkers)
    # ------------------------------------------------------------------
    def _trace_edge(self, child, parents) -> None:
        self.env.tracer.emit(
            "naming",
            "genealogy_edge",
            server=self.node,
            child=str(child),
            parents=[str(p) for p in parents],
        )

    def _trace_gc(self, lwg, view, witness) -> None:
        self.env.tracer.emit(
            "naming",
            "record_gc",
            server=self.node,
            lwg=lwg,
            view=str(view),
            witness=str(witness),
        )

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def _send_callback(self, target: NodeId, message: MultipleMappings) -> None:
        self.env.tracer.emit(
            "naming", "multiple_mappings", server=self.node, lwg=message.lwg, target=target
        )
        self.send(target, message, message.size_bytes())

    def _notifier_tick(self) -> None:
        self.notifier.check(self.db)
