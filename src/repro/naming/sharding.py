"""Deterministic shard map: LWG names -> shards -> replica sets.

The fully-replicated naming service tops out quickly: every server
holds every record, every accepted write is pushed to every peer, and
anti-entropy compares whole databases — all-to-all costs that grow
with the server count.  This module partitions the namespace instead.

Sharding is by **LWG name**, not by record key: every record of one
LWG (all of its views, tombstones included) lands in the same shard,
so conflict detection (`MULTIPLE-MAPPINGS`), per-LWG reads and
genealogy-driven GC each run entirely inside one replica set.  The
shard of an LWG is the first :data:`SHARD_PREFIX_LEN` hex characters
of the seed-independent SHA-256 of its name — the same prefix
:func:`~repro.naming.merkle.key_digest` puts first, so a shard *is* a
depth-:data:`SHARD_PREFIX_LEN` subtree of the Merkle prefix tree and
per-shard anti-entropy reuses the existing descent unchanged
(PROTOCOLS.md §18).

Each shard maps to a replica set of ``replication_factor`` servers by
**rendezvous (highest-random-weight) hashing** over the roster: every
server scores ``sha256(shard | server)`` and the top scorers own the
shard.  Anyone who knows the roster can compute any record's owners —
no directory service, no handoff protocol — and adding or removing one
of ``n`` servers moves only ~1/n of the shards, because the scores of
the surviving servers never change.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..runtime.interfaces import NodeId
from .records import LwgId, RecordKey

#: Hex characters of the key digest that name a shard.  Two characters
#: give 16^2 = 256 shards — enough granularity that replica sets stay
#: balanced to a few percent at 64 servers, while each shard is exactly
#: a depth-2 subtree of the (depth-4) Merkle prefix tree.
SHARD_PREFIX_LEN = 2

#: Total shard count (16^SHARD_PREFIX_LEN).
NUM_SHARDS = 16 ** SHARD_PREFIX_LEN

#: Every shard name, in fixed lexicographic order.
ALL_SHARDS: Tuple[str, ...] = tuple(
    format(i, f"0{SHARD_PREFIX_LEN}x") for i in range(NUM_SHARDS)
)


def shard_of_lwg(lwg: LwgId) -> str:
    """The shard an LWG name belongs to (seed-independent, roster-free)."""
    return hashlib.sha256(lwg.encode("utf-8")).hexdigest()[:SHARD_PREFIX_LEN]


def shard_of_key(key: RecordKey) -> str:
    """The shard of a record key — a function of its LWG name alone."""
    return shard_of_lwg(key[0])


def _score(shard: str, server: NodeId) -> bytes:
    return hashlib.sha256(f"{shard}|{server}".encode("utf-8")).digest()


class ShardMap:
    """Immutable shard -> replica-set assignment over a fixed roster.

    Built once per cluster from the server roster and the replication
    factor; every server and every client builds the identical map from
    the same inputs, which is what makes owners computable everywhere
    without coordination.  ``replication_factor >= len(servers)``
    degenerates to full replication (every server owns every shard and
    the anti-entropy scope collapses back to the tree root).
    """

    def __init__(self, servers: Sequence[NodeId], replication_factor: int):
        roster = list(dict.fromkeys(servers))  # dedupe, keep order
        if not roster:
            raise ValueError("shard map needs at least one server")
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.servers: Tuple[NodeId, ...] = tuple(roster)
        self.replication_factor = replication_factor
        count = min(replication_factor, len(roster))
        #: shard -> owners, highest rendezvous score first.  Ties (a
        #: 256-bit hash collision) break on the server id so the map is
        #: total-ordered and deterministic no matter what.
        self._owners: Dict[str, Tuple[NodeId, ...]] = {}
        self._owned: Dict[NodeId, List[str]] = {s: [] for s in self.servers}
        for shard in ALL_SHARDS:
            ranked = sorted(
                self.servers, key=lambda s: (_score(shard, s), s), reverse=True
            )
            owners = tuple(ranked[:count])
            self._owners[shard] = owners
            for owner in owners:
                self._owned[owner].append(shard)
        self._scope_cache: Dict[FrozenSet[NodeId], Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Ownership queries
    # ------------------------------------------------------------------
    @property
    def fully_replicated(self) -> bool:
        """True when every server owns every shard (rf >= roster)."""
        return self.replication_factor >= len(self.servers)

    @property
    def shards(self) -> Tuple[str, ...]:
        """Every shard name, in fixed lexicographic order."""
        return ALL_SHARDS

    def owners(self, shard: str) -> Tuple[NodeId, ...]:
        """The replica set of ``shard``, best rendezvous score first."""
        return self._owners[shard]

    def owners_for_lwg(self, lwg: LwgId) -> Tuple[NodeId, ...]:
        return self._owners[shard_of_lwg(lwg)]

    def owners_for_key(self, key: RecordKey) -> Tuple[NodeId, ...]:
        return self._owners[shard_of_lwg(key[0])]

    def owns(self, server: NodeId, shard: str) -> bool:
        return server in self._owners[shard]

    def owned_shards(self, server: NodeId) -> Tuple[str, ...]:
        """Every shard ``server`` replicates, in shard order."""
        return tuple(self._owned.get(server, ()))

    # ------------------------------------------------------------------
    # Pairwise scope (anti-entropy)
    # ------------------------------------------------------------------
    def scope(self, a: NodeId, b: NodeId) -> Tuple[str, ...]:
        """The Merkle prefixes two servers may reconcile over.

        The shards both own, as sorted tree prefixes — both sides
        compute the identical tuple from the roster, so the scope never
        travels on the wire.  Fully-replicated maps collapse to the
        root (``("",)``), making the descent byte-identical to the
        unsharded protocol.  An empty tuple means the pair shares no
        shard and has nothing to gossip about.
        """
        if self.fully_replicated:
            return ("",)
        pair = frozenset((a, b))
        cached = self._scope_cache.get(pair)
        if cached is None:
            mine, theirs = set(self._owned.get(a, ())), self._owned.get(b, ())
            cached = tuple(s for s in theirs if s in mine)
            self._scope_cache[pair] = cached
        return cached

    def co_replicas(self, server: NodeId) -> Tuple[NodeId, ...]:
        """Every other server sharing at least one shard with ``server``."""
        return tuple(
            peer
            for peer in self.servers
            if peer != server and self.scope(server, peer)
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap(servers={len(self.servers)}, "
            f"rf={self.replication_factor}, shards={NUM_SHARDS})"
        )
