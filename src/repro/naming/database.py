"""The per-server naming database.

Stores :class:`~repro.naming.records.MappingRecord` entries keyed by
``(lwg, lwg_view)`` plus the LWG-view genealogy DAG.  All mutation paths
funnel through :meth:`apply` (last-writer-wins per key) followed by
:meth:`garbage_collect` — a record is obsolete once its LWG view is a
strict ancestor of another *recorded* view of the same LWG, which is how
the paper discards stale mappings after merges ("the naming service
must be aware of the partial order of views").
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..vsync.view import ViewGenealogy, ViewId
from .records import HwgId, LwgId, MappingRecord, RecordKey


class NamingDatabase:
    """One replica's record store with genealogy-driven GC."""

    def __init__(self) -> None:
        self._records: Dict[RecordKey, MappingRecord] = {}
        self.genealogy = ViewGenealogy()
        self.applied = 0
        self.gc_removed = 0
        #: Optional observation hooks (wired by the server for tracing /
        #: invariant checking; None-safe no-ops by default).
        self.on_edge: Optional[Callable[[ViewId, Tuple[ViewId, ...]], None]] = None
        self.on_gc: Optional[Callable[[LwgId, ViewId, ViewId], None]] = None
        #: Cached :meth:`content_hash`; every mutation path clears it.
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(
        self,
        record: MappingRecord,
        parents: Iterable[ViewId] = (),
    ) -> bool:
        """Insert/update ``record``; returns True if the store changed.

        ``parents`` are the parent LWG views of ``record.lwg_view``; they
        feed the genealogy so earlier mappings of the same LWG can be
        garbage-collected.
        """
        parents = tuple(parents)
        if parents:
            self.genealogy.record(record.lwg_view, parents)
            self._content_hash = None
            if self.on_edge is not None:
                self.on_edge(record.lwg_view, parents)
        existing = self._records.get(record.key)
        if existing is not None and not record.newer_than(existing):
            return False
        self._records[record.key] = record
        self._content_hash = None
        self.applied += 1
        self.garbage_collect(record.lwg)
        return True

    def garbage_collect(self, lwg: Optional[LwgId] = None) -> int:
        """Drop records whose LWG view is an ancestor of a newer recorded view.

        Restricted to one LWG when given; returns the number removed.
        """
        removed = 0
        targets = (
            [lwg] if lwg is not None else sorted({l for l, _ in self._records})
        )
        for target in targets:
            keys = [k for k in self._records if k[0] == target]
            views = [k[1] for k in keys]
            for key in keys:
                _, view = key
                witness = next(
                    (
                        other
                        for other in views
                        if other != view and self.genealogy.is_ancestor(view, other)
                    ),
                    None,
                )
                if witness is not None:
                    del self._records[key]
                    self._content_hash = None
                    removed += 1
                    if self.on_gc is not None:
                        self.on_gc(target, view, witness)
        self.gc_removed += removed
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_records(self, lwg: LwgId) -> List[MappingRecord]:
        """Every non-deleted mapping currently stored for ``lwg``."""
        return sorted(
            (
                r
                for (l, _), r in self._records.items()
                if l == lwg and not r.deleted
            ),
            key=lambda r: (r.lwg_view, r.hwg_view),
        )

    def record_for(self, key: RecordKey) -> Optional[MappingRecord]:
        return self._records.get(key)

    def lwgs(self) -> Set[LwgId]:
        """All LWGs with at least one live record."""
        return {l for (l, _), r in self._records.items() if not r.deleted}

    def conflicts(self) -> Dict[LwgId, List[MappingRecord]]:
        """LWGs whose live views are mapped onto *different* HWGs.

        These are the "inconsistent mappings" of Section 5.2: concurrent
        views of one LWG in different heavy-weight groups.  Concurrent
        views co-mapped on the *same* HWG are not conflicts — they merge
        through local peer discovery without naming-service involvement.
        """
        out: Dict[LwgId, List[MappingRecord]] = {}
        # Sorted so the notifier contacts conflicting LWGs in a fixed
        # order — set iteration would leak the interpreter's hash seed
        # into the shared latency-jitter draw order and break replay.
        for lwg in sorted(self.lwgs()):
            records = self.live_records(lwg)
            if len({r.hwg for r in records}) > 1:
                out[lwg] = records
        return out

    # ------------------------------------------------------------------
    # Replication support
    # ------------------------------------------------------------------
    def digest(self) -> Dict[RecordKey, tuple]:
        """Compact summary for anti-entropy: key -> LWW order key."""
        return {k: r.order_key() for k, r in self._records.items()}

    def content_hash(self) -> str:
        """Digest-of-digests over records *and* genealogy.

        Two replicas with equal hashes hold byte-identical databases, so
        a gossip exchange between them has nothing to ship — the server
        uses this to short-circuit steady-state anti-entropy to a single
        small request/reply pair instead of two full digests.  Cached;
        every mutation path invalidates.
        """
        if self._content_hash is None:
            hasher = hashlib.sha256()
            for key in sorted(self._records):
                hasher.update(repr((key, self._records[key].order_key())).encode())
            edges = self.genealogy.edges()
            for child in sorted(edges):
                hasher.update(repr((child, edges[child])).encode())
            self._content_hash = hasher.hexdigest()
        return self._content_hash

    def records_missing_from(self, digest: Dict[RecordKey, tuple]) -> List[MappingRecord]:
        """Records we hold that the digest lacks or holds older."""
        out = []
        for key, record in self._records.items():
            theirs = digest.get(key)
            if theirs is None or record.order_key() > theirs:
                out.append(record)
        return out

    def genealogy_edges(self) -> Dict[ViewId, Tuple[ViewId, ...]]:
        return self.genealogy.edges()

    def absorb_genealogy(self, edges: Dict[ViewId, Tuple[ViewId, ...]]) -> None:
        if edges:
            self._content_hash = None
        for child, parents in edges.items():
            self.genealogy.record(child, parents)
            if self.on_edge is not None and parents:
                self.on_edge(child, tuple(parents))

    def snapshot(self) -> List[MappingRecord]:
        """Every stored record (tests / reporting)."""
        return sorted(self._records.values(), key=lambda r: (r.lwg, r.lwg_view))

    def __len__(self) -> int:
        return len(self._records)
