"""The per-server naming database.

Stores :class:`~repro.naming.records.MappingRecord` entries keyed by
``(lwg, lwg_view)`` plus the LWG-view genealogy DAG.  All mutation paths
funnel through :meth:`apply` (last-writer-wins per key) followed by
:meth:`garbage_collect` — a record is obsolete once its LWG view is a
strict ancestor of another *recorded* view of the same LWG, which is how
the paper discards stale mappings after merges ("the naming service
must be aware of the partial order of views").

Two digest structures ride the same mutation funnel:

* a per-LWG key index, so GC and live-record queries touch only the
  records of one group instead of scanning the whole store, and
* a :class:`~repro.naming.merkle.MerklePrefixTree` over the record
  keyspace, which anti-entropy uses to localize divergence without
  shipping a flat full-database digest.

``content_hash`` is derived from the Merkle root plus a genealogy
digest, so it stays O(1) to read between mutations while still covering
records, tombstones and ancestry knowledge byte-for-byte.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..vsync.view import ViewGenealogy, ViewId
from .merkle import MerklePrefixTree
from .records import HwgId, LwgId, MappingRecord, RecordKey


class NamingDatabase:
    """One replica's record store with genealogy-driven GC."""

    def __init__(self) -> None:
        self._records: Dict[RecordKey, MappingRecord] = {}
        #: lwg -> keys of every stored record of that group.
        self._by_lwg: Dict[LwgId, Set[RecordKey]] = {}
        self.genealogy = ViewGenealogy()
        #: Merkle-prefix digest tree over the record keyspace, updated
        #: through the same funnel as ``content_hash``.
        self.merkle = MerklePrefixTree()
        self.applied = 0
        self.gc_removed = 0
        #: Optional observation hooks (wired by the server for tracing /
        #: invariant checking; None-safe no-ops by default).
        self.on_edge: Optional[Callable[[ViewId, Tuple[ViewId, ...]], None]] = None
        self.on_gc: Optional[Callable[[LwgId, ViewId, ViewId], None]] = None
        #: Persistence hooks (wired by ``DurableStore.attach``): fired on
        #: every accepted record (with its genealogy parents) and on every
        #: batch of absorbed genealogy edges.  Together they journal
        #: exactly the inputs needed to replay this database — GC is
        #: derivable and deliberately not journaled.
        self.on_applied: Optional[Callable[[MappingRecord, Tuple[ViewId, ...]], None]] = None
        self.on_edges: Optional[Callable[[Dict[ViewId, Tuple[ViewId, ...]]], None]] = None
        #: Cached :meth:`content_hash`; every mutation path clears it.
        self._content_hash: Optional[str] = None
        #: Cached digest of the genealogy edge set; cleared whenever an
        #: edge is recorded (apply parents / absorb_genealogy).
        self._genealogy_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(
        self,
        record: MappingRecord,
        parents: Iterable[ViewId] = (),
    ) -> bool:
        """Insert/update ``record``; returns True if the store changed.

        ``parents`` are the parent LWG views of ``record.lwg_view``; they
        feed the genealogy so earlier mappings of the same LWG can be
        garbage-collected.
        """
        parents = tuple(parents)
        genealogy_changed = False
        if parents:
            self.genealogy.record(record.lwg_view, parents)
            self._content_hash = None
            self._genealogy_hash = None
            genealogy_changed = True
            if self.on_edge is not None:
                self.on_edge(record.lwg_view, parents)
        existing = self._records.get(record.key)
        if existing is not None and not record.newer_than(existing):
            # The record lost last-writer-wins, but any genealogy it
            # carried is new knowledge that can obsolete records we
            # already hold — collect now, or stale mappings linger
            # until an unrelated mutation of the same LWG.
            if genealogy_changed:
                if self.on_edges is not None:
                    self.on_edges({record.lwg_view: parents})
                self.garbage_collect(record.lwg)
            return False
        self._store(record)
        self.applied += 1
        if self.on_applied is not None:
            self.on_applied(record, parents)
        self.garbage_collect(record.lwg)
        return True

    def _store(self, record: MappingRecord) -> None:
        key = record.key
        self._records[key] = record
        self._by_lwg.setdefault(record.lwg, set()).add(key)
        self.merkle.update(key, record.order_key())
        self._content_hash = None

    def _discard(self, key: RecordKey) -> None:
        del self._records[key]
        keys = self._by_lwg[key[0]]
        keys.discard(key)
        if not keys:
            del self._by_lwg[key[0]]
        self.merkle.remove(key)
        self._content_hash = None

    def garbage_collect(self, lwg: Optional[LwgId] = None) -> int:
        """Drop records whose LWG view is an ancestor of a newer recorded view.

        Restricted to one LWG when given; returns the number removed.
        """
        removed = 0
        targets = [lwg] if lwg is not None else sorted(self._by_lwg)
        for target in targets:
            keys = self._by_lwg.get(target)
            if not keys or len(keys) < 2:
                continue
            ordered = sorted(keys)
            views = [k[1] for k in ordered]
            for key in ordered:
                _, view = key
                witness = next(
                    (
                        other
                        for other in views
                        if other != view and self.genealogy.is_ancestor(view, other)
                    ),
                    None,
                )
                if witness is not None:
                    self._discard(key)
                    removed += 1
                    if self.on_gc is not None:
                        self.on_gc(target, view, witness)
        self.gc_removed += removed
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_records(self, lwg: LwgId) -> List[MappingRecord]:
        """Every non-deleted mapping currently stored for ``lwg``."""
        return sorted(
            (
                self._records[key]
                for key in self._by_lwg.get(lwg, ())
                if not self._records[key].deleted
            ),
            key=lambda r: (r.lwg_view, r.hwg_view),
        )

    def record_for(self, key: RecordKey) -> Optional[MappingRecord]:
        return self._records.get(key)

    def lwgs(self) -> Set[LwgId]:
        """All LWGs with at least one live record."""
        return {
            lwg
            for lwg, keys in self._by_lwg.items()
            if any(not self._records[key].deleted for key in keys)
        }

    def conflicts(self) -> Dict[LwgId, List[MappingRecord]]:
        """LWGs whose live views are mapped onto *different* HWGs.

        These are the "inconsistent mappings" of Section 5.2: concurrent
        views of one LWG in different heavy-weight groups.  Concurrent
        views co-mapped on the *same* HWG are not conflicts — they merge
        through local peer discovery without naming-service involvement.
        """
        out: Dict[LwgId, List[MappingRecord]] = {}
        # Sorted so the notifier contacts conflicting LWGs in a fixed
        # order — set iteration would leak the interpreter's hash seed
        # into the shared latency-jitter draw order and break replay.
        for lwg in sorted(self.lwgs()):
            records = self.live_records(lwg)
            if len({r.hwg for r in records}) > 1:
                out[lwg] = records
        return out

    # ------------------------------------------------------------------
    # Replication support
    # ------------------------------------------------------------------
    def clone(self) -> "NamingDatabase":
        """Independent replica with the same contents and digest caches.

        Records are immutable, so only the containers are copied; the
        Merkle tree and hash caches carry over, making a clone far
        cheaper than re-applying every record.  Observation hooks are
        deliberately *not* copied — they belong to the server wrapping
        the original.  Used to fork replicas from a prebuilt base in
        benchmarks and tests.
        """
        out = NamingDatabase()
        out._records = dict(self._records)
        out._by_lwg = {lwg: set(keys) for lwg, keys in self._by_lwg.items()}
        out.genealogy = self.genealogy.clone()
        out.merkle = self.merkle.clone()
        out.applied = self.applied
        out.gc_removed = self.gc_removed
        out._content_hash = self._content_hash
        out._genealogy_hash = self._genealogy_hash
        return out

    def digest(self) -> Dict[RecordKey, tuple]:
        """Flat full-database summary: key -> LWW order key.

        Kept as the reference the Merkle descent is benchmarked against
        (and for tests); the wire protocol no longer ships it.
        """
        return {k: r.order_key() for k, r in self._records.items()}

    def content_hash(self) -> str:
        """Digest-of-digests over records *and* genealogy.

        Two replicas with equal hashes hold byte-identical databases, so
        a gossip exchange between them has nothing to ship — the server
        uses this to short-circuit steady-state anti-entropy to a single
        small request/reply pair instead of a digest descent.  Derived
        from the Merkle root and a genealogy digest, both cached; every
        mutation path invalidates.
        """
        if self._content_hash is None:
            self._content_hash = self._hash_over(("",))
        return self._content_hash

    def scope_hash(self, prefixes: Tuple[str, ...] = ("",)) -> str:
        """Digest restricted to the Merkle subtrees under ``prefixes``.

        Two replicas with equal scope hashes agree byte-for-byte on
        every record under those prefixes *and* on their genealogy
        knowledge — the per-shard analogue of :meth:`content_hash`,
        used by sharded anti-entropy to short-circuit on the shards two
        servers co-own.  ``("",)`` (the root scope) is exactly
        :meth:`content_hash`, cache included, so the unsharded protocol
        is bit-identical.  Callers pass sorted prefixes; both sides of
        an exchange derive the same tuple from the shard map.
        """
        if prefixes == ("",):
            return self.content_hash()
        return self._hash_over(prefixes)

    def _hash_over(self, prefixes: Tuple[str, ...]) -> str:
        hasher = hashlib.sha256()
        for prefix in prefixes:
            hasher.update(self.merkle.node_hash(prefix).encode("ascii"))
        hasher.update(b"|")
        hasher.update(self._genealogy_digest().encode("ascii"))
        return hasher.hexdigest()

    def _genealogy_digest(self) -> str:
        if self._genealogy_hash is None:
            hasher = hashlib.sha256()
            edges = self.genealogy.edges()
            for child in sorted(edges):
                hasher.update(repr((child, edges[child])).encode())
            self._genealogy_hash = hasher.hexdigest()
        return self._genealogy_hash

    def records_missing_from(self, digest: Dict[RecordKey, tuple]) -> List[MappingRecord]:
        """Records we hold that the digest lacks or holds older."""
        out = []
        for key, record in self._records.items():
            theirs = digest.get(key)
            if theirs is None or record.order_key() > theirs:
                out.append(record)
        return out

    def records_missing_under(
        self, prefix: str, digest: Dict[RecordKey, tuple]
    ) -> List[MappingRecord]:
        """Like :meth:`records_missing_from`, restricted to one subtree.

        ``digest`` is the remote replica's leaf digest for ``prefix``;
        only our records under the same prefix are candidates, so the
        cost is O(subtree), not O(database).
        """
        out = []
        for key in self.merkle.keys_under(prefix):
            record = self._records[key]
            theirs = digest.get(key)
            if theirs is None or record.order_key() > theirs:
                out.append(record)
        return out

    def leaf_digest_under(self, prefix: str) -> Dict[RecordKey, tuple]:
        """``key -> order_key`` for every record under ``prefix``."""
        return self.merkle.leaf_digest(prefix)

    def genealogy_edges(self) -> Dict[ViewId, Tuple[ViewId, ...]]:
        return self.genealogy.edges()

    def absorb_genealogy(self, edges: Dict[ViewId, Tuple[ViewId, ...]]) -> None:
        if edges:
            self._content_hash = None
            self._genealogy_hash = None
        for child, parents in edges.items():
            self.genealogy.record(child, parents)
            if self.on_edge is not None and parents:
                self.on_edge(child, tuple(parents))
        if edges and self.on_edges is not None:
            self.on_edges({child: tuple(parents) for child, parents in edges.items()})

    def verify_integrity(self) -> List[str]:
        """Cross-check the derived structures against the record store.

        Returns a sorted list of problem descriptions (empty means the
        database is internally consistent).  Used by the recovery
        checker to assert that a reloaded replica is not merely
        hash-equal but structurally sound: index, Merkle tree and digest
        caches all agree with the records.
        """
        problems: List[str] = []
        for key in sorted(self._records):
            record = self._records[key]
            if record.key != key:
                problems.append(f"record stored under wrong key {key}")
            if key not in self._by_lwg.get(record.lwg, set()):
                problems.append(f"per-lwg index missing key {key}")
        for lwg in sorted(self._by_lwg):
            keys = self._by_lwg[lwg]
            if not keys:
                problems.append(f"empty index bucket for {lwg}")
            for key in sorted(keys):
                if key not in self._records:
                    problems.append(f"index orphan {lwg} -> {key}")
                elif key[0] != lwg:
                    problems.append(f"index bucket mismatch {lwg} -> {key}")
        expected = {key: record.order_key() for key, record in self._records.items()}
        if self.merkle.leaf_digest("") != expected:
            problems.append("merkle leaves diverge from record store")
        cached = self._content_hash
        if cached is not None:
            self._content_hash = None
            if self.content_hash() != cached:
                problems.append("cached content hash is stale")
        return problems

    def snapshot(self) -> List[MappingRecord]:
        """Every stored record (tests / reporting)."""
        return sorted(self._records.values(), key=lambda r: (r.lwg, r.lwg_view))

    def __len__(self) -> int:
        return len(self._records)
