"""Merkle-prefix digest tree over the naming record keyspace.

PR 5's delta reconciliation still shipped a *flat* digest of the whole
database on every anti-entropy exchange — O(n) bytes per gossip round
no matter how little the replicas diverge.  Following the structured-
gossip design, this module maintains an incrementally-updated hash tree
keyed by a stable prefix of ``hash(RecordKey)``: two replicas compare
subtree digests root-down and descend only into divergent branches, so
a small divergence is localized in O(log n) rounds and O(log n) wire
bytes instead of O(n).

Layout.  Every record key is placed in the bucket named by the first
``depth`` hex characters of a seed-independent SHA-256-derived digest
of the key (Python's builtin ``hash`` is process-seeded and must never
reach the wire).  The digest leads with the key's **shard** — a hash
of the LWG name alone (:mod:`repro.naming.sharding`) — so a shard is
one depth-2 subtree and scoped descents reuse this tree as-is.  Internal nodes are hex-prefix strings (``""`` is the root); a
node's hash combines its non-empty children's hashes in fixed child
order, a bucket's hash combines its ``(key, order_key)`` leaf entries
in sorted key order.  The tree is **sparse**: empty subtrees hash to
``EMPTY_HASH`` and occupy no memory, so the structure costs O(records),
not O(16^depth).

Incrementality.  ``update``/``remove`` adjust one bucket and invalidate
only the hashes on the root path (``depth + 1`` cache pops); hashes are
recomputed lazily on query.  The tree is fed exclusively through the
:class:`~repro.naming.database.NamingDatabase` mutation funnel — the
same choke point that invalidates ``content_hash`` — so the two can
never disagree about what the replica stores.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

from .records import RecordKey
from .sharding import SHARD_PREFIX_LEN, shard_of_lwg

#: Hash of an empty subtree.  The empty string is deliberate: it is
#: falsy (``if h:`` skips empty children), cannot collide with a real
#: hex digest, and costs nothing on the wire.
EMPTY_HASH = ""

#: Hex alphabet = branching factor 16, matching the digest encoding.
_CHILD_CHARS = "0123456789abcdef"

#: Wire hashes are truncated to 64 bits — plenty for anti-entropy,
#: where a collision only delays convergence by one gossip round.
_HASH_HEX_CHARS = 16

#: Default tree depth: 16^4 = 65536 buckets keeps buckets O(1)-sized up
#: to a few hundred thousand records while the root-to-bucket path (and
#: therefore the descent) stays 4 levels deep.
DEFAULT_DEPTH = 4


def key_digest(key: RecordKey) -> str:
    """Seed-independent digest of a record key, as a hex string.

    Stable across processes, platforms and interpreter restarts: every
    replica must place every key in the same bucket or subtree
    comparison is meaningless.

    The first :data:`~repro.naming.sharding.SHARD_PREFIX_LEN` hex
    characters are a hash of the **LWG name alone** — the record's
    shard — so every view of one LWG lands in the same depth-2 subtree
    and a shard is exactly one Merkle subtree (the per-shard descent of
    PROTOCOLS.md §18 reuses this tree unchanged).  The remaining
    characters hash the full key, spreading a group's records across
    the buckets inside its shard.
    """
    lwg, view = key
    raw = f"{lwg}\x00{view.coordinator}\x00{view.seq}".encode("utf-8")
    return shard_of_lwg(lwg) + hashlib.sha256(raw).hexdigest()[SHARD_PREFIX_LEN:]


def _entry_hash(key: RecordKey, order_key: tuple) -> str:
    lwg, view = key
    raw = repr((lwg, view.coordinator, view.seq, order_key)).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:_HASH_HEX_CHARS]


class MerklePrefixTree:
    """Sparse, incrementally-maintained prefix hash tree of record keys.

    Leaves are ``key -> order_key`` pairs (the same last-writer-wins
    order keys the flat digest shipped); equality of two subtree hashes
    therefore implies the replicas agree on every record under that
    prefix, tombstones included.
    """

    def __init__(self, depth: int = DEFAULT_DEPTH):
        if depth < 1:
            raise ValueError("merkle tree depth must be >= 1")
        self.depth = depth
        #: key -> (bucket prefix, order_key); the authoritative leaf set.
        self._leaves: Dict[RecordKey, Tuple[str, tuple]] = {}
        #: full-depth prefix -> {key: order_key} for non-empty buckets.
        self._buckets: Dict[str, Dict[RecordKey, tuple]] = {}
        #: prefix (len 0..depth) -> number of keys under it.
        self._counts: Dict[str, int] = {}
        #: lazily-computed node hashes; popped along the root path on
        #: every mutation.
        self._hashes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Mutation (NamingDatabase funnel only)
    # ------------------------------------------------------------------
    def update(self, key: RecordKey, order_key: tuple) -> None:
        """Insert ``key`` or replace its order key."""
        existing = self._leaves.get(key)
        if existing is not None:
            bucket_prefix, old_order = existing
            if old_order == order_key:
                return
            self._leaves[key] = (bucket_prefix, order_key)
            self._buckets[bucket_prefix][key] = order_key
            self._invalidate_path(bucket_prefix)
            return
        bucket_prefix = key_digest(key)[: self.depth]
        self._leaves[key] = (bucket_prefix, order_key)
        self._buckets.setdefault(bucket_prefix, {})[key] = order_key
        for i in range(self.depth + 1):
            prefix = bucket_prefix[:i]
            self._counts[prefix] = self._counts.get(prefix, 0) + 1
        self._invalidate_path(bucket_prefix)

    def remove(self, key: RecordKey) -> None:
        """Drop ``key``; a no-op if it is not present."""
        existing = self._leaves.pop(key, None)
        if existing is None:
            return
        bucket_prefix, _ = existing
        bucket = self._buckets[bucket_prefix]
        del bucket[key]
        if not bucket:
            del self._buckets[bucket_prefix]
        for i in range(self.depth + 1):
            prefix = bucket_prefix[:i]
            remaining = self._counts[prefix] - 1
            if remaining:
                self._counts[prefix] = remaining
            else:
                del self._counts[prefix]
        self._invalidate_path(bucket_prefix)

    def _invalidate_path(self, bucket_prefix: str) -> None:
        pop = self._hashes.pop
        for i in range(self.depth + 1):
            pop(bucket_prefix[:i], None)

    # ------------------------------------------------------------------
    # Digest queries
    # ------------------------------------------------------------------
    def root_hash(self) -> str:
        return self.node_hash("")

    def node_hash(self, prefix: str) -> str:
        """Subtree hash at ``prefix`` (:data:`EMPTY_HASH` when empty)."""
        if not self._counts.get(prefix):
            return EMPTY_HASH
        cached = self._hashes.get(prefix)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        if len(prefix) >= self.depth:
            bucket = self._buckets[prefix]
            for key in sorted(bucket):
                hasher.update(_entry_hash(key, bucket[key]).encode("ascii"))
        else:
            for child in _CHILD_CHARS:
                child_hash = self.node_hash(prefix + child)
                if child_hash:
                    hasher.update(child.encode("ascii"))
                    hasher.update(child_hash.encode("ascii"))
        digest = hasher.hexdigest()[:_HASH_HEX_CHARS]
        self._hashes[prefix] = digest
        return digest

    def children(self, prefix: str) -> Dict[str, str]:
        """Hashes of ``prefix``'s non-empty children, keyed by child char."""
        out: Dict[str, str] = {}
        for child in _CHILD_CHARS:
            child_prefix = prefix + child
            if self._counts.get(child_prefix):
                out[child] = self.node_hash(child_prefix)
        return out

    def is_bucket(self, prefix: str) -> bool:
        return len(prefix) >= self.depth

    def keys_under(self, prefix: str) -> List[RecordKey]:
        """Every stored key whose digest starts with ``prefix`` (sorted)."""
        out: List[RecordKey] = []
        for bucket_prefix in self._buckets_under(prefix):
            out.extend(self._buckets[bucket_prefix])
        out.sort()
        return out

    def leaf_digest(self, prefix: str) -> Dict[RecordKey, tuple]:
        """``key -> order_key`` for everything under ``prefix``.

        This is exactly the flat digest restricted to one subtree — the
        payload two replicas exchange once the descent has localized a
        divergence.
        """
        out: Dict[RecordKey, tuple] = {}
        for bucket_prefix in self._buckets_under(prefix):
            out.update(self._buckets[bucket_prefix])
        return out

    def _buckets_under(self, prefix: str) -> Iterator[str]:
        if len(prefix) >= self.depth:
            if prefix in self._buckets:
                yield prefix
            return
        stack = [prefix]
        while stack:
            current = stack.pop()
            if len(current) == self.depth:
                yield current
                continue
            for child in _CHILD_CHARS:
                child_prefix = current + child
                if self._counts.get(child_prefix):
                    stack.append(child_prefix)

    def clone(self) -> "MerklePrefixTree":
        """Independent copy, including the computed-hash cache.

        Cloning is O(records) dictionary copies — far cheaper than
        replaying the mutations — and carrying the hash cache over means
        the copy answers digest queries without recomputing subtrees the
        original already hashed (benchmarks fork many replicas from one
        prebuilt base).
        """
        out = MerklePrefixTree(self.depth)
        out._leaves = dict(self._leaves)
        out._buckets = {prefix: dict(b) for prefix, b in self._buckets.items()}
        out._counts = dict(self._counts)
        out._hashes = dict(self._hashes)
        return out

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, key: RecordKey) -> bool:
        return key in self._leaves
