"""Durable node state: snapshot + append-only log + node metadata.

Every scenario used to start from a clean boot; this module gives a node
a *disk* so it can crash mid-history and come back with its naming
database and its vsync identity intact — or detectably corrupted, which
the self-healing machinery then repairs (ROADMAP: "self-healing from
arbitrary state").  Three durable areas per node:

``snapshot``
    A checksummed full serialization of the
    :class:`~repro.naming.database.NamingDatabase` (records + genealogy
    edges).  Rewritten on compaction; the previous generation is kept in
    ``snapshot.old`` so fuzzing can force a *stale* snapshot.
``log``
    An append-only journal of every mutation since the snapshot, one
    CRC-framed canonical-JSON line per entry.  Entries are self-checking:
    a bit flip quarantines exactly one line, a torn tail is detected as
    truncation, and replay stops losing nothing else.
``meta``
    Small per-node vsync state — transport incarnation, the view-id
    sequence counter, and a bounded installed-view history — so a
    restarted node *bumps* its incarnation instead of reusing its old
    one, and never re-mints a ``ViewId`` from a previous life.

Corruption is a first-class input, not an error: :func:`inject_corruption`
implements the fuzzer's ``corrupt_state`` modes (truncated log, stale
snapshot, bit-flipped record, orphaned mapping) against the same byte
areas :meth:`DurableStore.load` reads back.  Whatever ``load`` salvages,
anti-entropy (PROTOCOLS.md §16) reconciles with the surviving replicas —
the recovery path *is* the reconciliation path.

Determinism: all serialization is canonical (sorted keys, sorted record
order), so identical databases persist to identical bytes on any
interpreter hash seed — a requirement for replayable fuzz schedules that
corrupt specific byte offsets.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..vsync.view import ViewId
from .database import NamingDatabase
from .records import MappingRecord
from .sharding import shard_of_lwg

#: Snapshot header magic; the space-separated sha256 of the body follows.
SNAPSHOT_MAGIC = "LWGSNAP1"

#: Durable area names.
AREA_SNAPSHOT = "snapshot"
AREA_SNAPSHOT_OLD = "snapshot.old"
AREA_LOG = "log"
AREA_META = "meta"

#: Append-only-log compaction threshold (entries since last snapshot).
DEFAULT_SNAPSHOT_EVERY = 64

#: Installed-view history entries retained in node meta.
VIEW_HISTORY_LIMIT = 64

#: The fuzzer's corruption modes (``corrupt_state`` step grammar).
CORRUPTION_MODES = (
    "truncated_log",
    "stale_snapshot",
    "bit_flip",
    "orphan_mapping",
)


# ----------------------------------------------------------------------
# Codec: canonical JSON forms for records, view ids and genealogy
# ----------------------------------------------------------------------
def encode_view_id(view_id: ViewId) -> List[Any]:
    return [view_id.coordinator, view_id.seq]


def decode_view_id(data: Any) -> ViewId:
    coordinator, seq = data
    return ViewId(coordinator=str(coordinator), seq=int(seq))


def encode_record(record: MappingRecord) -> Dict[str, Any]:
    return {
        "lwg": record.lwg,
        "lv": encode_view_id(record.lwg_view),
        "lm": list(record.lwg_members),
        "hwg": record.hwg,
        "hv": encode_view_id(record.hwg_view),
        "ver": record.version,
        "w": record.writer,
        "del": record.deleted,
    }


def decode_record(data: Dict[str, Any]) -> MappingRecord:
    return MappingRecord(
        lwg=str(data["lwg"]),
        lwg_view=decode_view_id(data["lv"]),
        lwg_members=tuple(str(m) for m in data["lm"]),
        hwg=str(data["hwg"]),
        hwg_view=decode_view_id(data["hv"]),
        version=int(data["ver"]),
        writer=str(data["w"]),
        deleted=bool(data["del"]),
    )


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _frame(obj: Any) -> bytes:
    """One log line: ``crc32hex<space>json\\n`` (self-checking)."""
    body = _canonical(obj)
    return f"{zlib.crc32(body):08x} ".encode("ascii") + body + b"\n"


def _unframe(line: bytes) -> Optional[Any]:
    """Decode one framed line; None if the checksum or syntax fails."""
    try:
        crc_hex, body = line.split(b" ", 1)
        if int(crc_hex, 16) != zlib.crc32(body):
            return None
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


# ----------------------------------------------------------------------
# Storage backends
# ----------------------------------------------------------------------
class MemoryStorage:
    """Byte-area storage living in process memory.

    This models the node's disk inside the deterministic simulator:
    :class:`~repro.sim.process.Process` objects survive a simulated
    crash, so bytes written here persist across crash/recover while the
    *volatile* protocol state is wiped and rebuilt from them.
    """

    def __init__(self) -> None:
        self._areas: Dict[str, bytes] = {}

    def read(self, area: str) -> bytes:
        return self._areas.get(area, b"")

    def write(self, area: str, data: bytes) -> None:
        if data:
            self._areas[area] = bytes(data)
        else:
            self._areas.pop(area, None)

    def append(self, area: str, data: bytes) -> None:
        self._areas[area] = self._areas.get(area, b"") + bytes(data)


class FileStorage:
    """Byte-area storage backed by files in a directory.

    The real-deployment counterpart of :class:`MemoryStorage`: an
    asyncio-backend node pointed at the same directory across OS-process
    restarts recovers through the identical
    :meth:`DurableStore.load` path the simulator exercises.
    """

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, area: str) -> Path:
        return self.directory / area

    def read(self, area: str) -> bytes:
        try:
            return self._path(area).read_bytes()
        except FileNotFoundError:
            return b""

    def write(self, area: str, data: bytes) -> None:
        if data:
            self._path(area).write_bytes(data)
        else:
            try:
                self._path(area).unlink()
            except FileNotFoundError:
                pass

    def append(self, area: str, data: bytes) -> None:
        with open(self._path(area), "ab") as handle:
            handle.write(data)


# ----------------------------------------------------------------------
# Load result
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """What :meth:`DurableStore.load` salvaged from the durable areas."""

    db: NamingDatabase
    #: True if a valid snapshot seeded the database.
    snapshot_used: bool = False
    #: True if the snapshot existed but failed its checksum.
    snapshot_rejected: bool = False
    #: Log entries replayed successfully.
    log_entries: int = 0
    #: Whole log lines dropped for checksum/decode failure.
    quarantined: int = 0
    #: True if the log ended in a torn (unterminated) line.
    log_truncated: bool = False
    #: Records skipped because their shard is not in the caller's
    #: ``owned`` scope (valid bytes, deliberately not loaded — a shard
    #: hand-off or a stray foreign write, never damage).
    filtered: int = 0

    @property
    def clean(self) -> bool:
        return not (self.snapshot_rejected or self.quarantined or self.log_truncated)

    def describe(self) -> str:
        flags = []
        if self.snapshot_used:
            flags.append("snapshot")
        if self.snapshot_rejected:
            flags.append("snapshot-rejected")
        if self.quarantined:
            flags.append(f"quarantined={self.quarantined}")
        if self.log_truncated:
            flags.append("log-truncated")
        if self.filtered:
            flags.append(f"filtered={self.filtered}")
        return (
            f"records={len(self.db)} log_entries={self.log_entries} "
            f"{' '.join(flags) or 'clean'}"
        )


# ----------------------------------------------------------------------
# The durable store
# ----------------------------------------------------------------------
class DurableStore:
    """One node's durable state: naming snapshot + log, and vsync meta.

    The store is *passive*: it never touches a live database except
    through the two hook slots :meth:`attach` fills
    (``NamingDatabase.on_applied`` / ``on_edges``), and :meth:`load`
    always builds a **fresh** database through the normal mutation
    funnel — which is what rebuilds the Merkle tree, the per-LWG index
    and the genealogy from bytes.
    """

    def __init__(self, storage: Any = None, snapshot_every: int = DEFAULT_SNAPSHOT_EVERY):
        self.storage = storage if storage is not None else MemoryStorage()
        self.snapshot_every = snapshot_every
        #: Entries appended since the last snapshot write.
        self.log_entries = 0
        self.snapshots_written = 0
        self.entries_appended = 0
        self._meta_cache: Optional[Dict[str, Any]] = None
        self._attached: Optional[NamingDatabase] = None

    def has_state(self) -> bool:
        """True if any durable area holds bytes (i.e. this is a restart)."""
        return any(
            self.storage.read(area)
            for area in (AREA_SNAPSHOT, AREA_LOG, AREA_META)
        )

    # ------------------------------------------------------------------
    # Naming database: persist hooks
    # ------------------------------------------------------------------
    def attach(self, db: NamingDatabase) -> None:
        """Wire ``db``'s persistence hooks so every mutation is journaled."""
        self._attached = db
        db.on_applied = self._on_applied
        db.on_edges = self._on_edges

    def _on_applied(self, record: MappingRecord, parents: Tuple[ViewId, ...]) -> None:
        self._append(
            {
                "k": "rec",
                "s": shard_of_lwg(record.lwg),
                "r": encode_record(record),
                "p": [encode_view_id(p) for p in parents],
            }
        )

    def _on_edges(self, edges: Dict[ViewId, Tuple[ViewId, ...]]) -> None:
        self._append(
            {
                "k": "edges",
                "e": sorted(
                    [encode_view_id(c), [encode_view_id(p) for p in parents]]
                    for c, parents in edges.items()
                ),
            }
        )

    def _append(self, entry: Dict[str, Any]) -> None:
        self.storage.append(AREA_LOG, _frame(entry))
        self.log_entries += 1
        self.entries_appended += 1
        if self.log_entries >= self.snapshot_every and self._attached is not None:
            self.write_snapshot(self._attached)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def write_snapshot(self, db: NamingDatabase) -> None:
        """Serialize ``db`` fully, retire the old snapshot, clear the log.

        Records are grouped by shard so a scoped :meth:`load` can skip
        whole foreign shard groups; genealogy edges stay global (GC
        needs the full ancestry regardless of which shards are loaded).
        """
        edges = db.genealogy_edges()
        shards: Dict[str, List[Dict[str, Any]]] = {}
        for record in db.snapshot():
            shards.setdefault(shard_of_lwg(record.lwg), []).append(
                encode_record(record)
            )
        body = _canonical(
            {
                "shards": shards,
                "edges": sorted(
                    [encode_view_id(c), [encode_view_id(p) for p in parents]]
                    for c, parents in edges.items()
                ),
            }
        )
        digest = hashlib.sha256(body).hexdigest()
        data = f"{SNAPSHOT_MAGIC} {digest}\n".encode("ascii") + body
        previous = self.storage.read(AREA_SNAPSHOT)
        if previous:
            self.storage.write(AREA_SNAPSHOT_OLD, previous)
        self.storage.write(AREA_SNAPSHOT, data)
        self.storage.write(AREA_LOG, b"")
        self.log_entries = 0
        self.snapshots_written += 1

    def _decode_snapshot(self, data: bytes) -> Optional[Dict[str, Any]]:
        try:
            header, body = data.split(b"\n", 1)
            magic, digest = header.decode("ascii").split(" ", 1)
            if magic != SNAPSHOT_MAGIC:
                return None
            if hashlib.sha256(body).hexdigest() != digest:
                return None
            parsed = json.loads(body.decode("utf-8"))
            return parsed if isinstance(parsed, dict) else None
        except (ValueError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, owned: Optional[FrozenSet[str]] = None) -> LoadResult:
        """Rebuild a database from snapshot + log, quarantining corruption.

        Read-only with respect to the durable areas.  The returned
        database has no hooks attached; callers wire their own (and
        typically re-:meth:`attach` this store).  Replay ends with a
        full garbage-collection sweep so the result is the same
        fully-collected fixed point the live database maintains.

        ``owned`` scopes the reload to a set of shards: records of
        other shards are counted in :attr:`LoadResult.filtered` and not
        applied (a sharded server recovers only its own data), while
        genealogy — global knowledge — is always absorbed in full, so
        the reloaded database garbage-collects exactly like the live
        one did.  ``None`` loads everything.
        """
        db = NamingDatabase()
        result = LoadResult(db=db)
        snap = self.storage.read(AREA_SNAPSHOT)
        if snap:
            parsed = self._decode_snapshot(snap)
            if parsed is None:
                result.snapshot_rejected = True
            else:
                result.snapshot_used = True
                self._replay_edges(db, parsed.get("edges", ()))
                shards = parsed.get("shards")
                if shards is None:
                    # Pre-sharding snapshot layout: one flat record list.
                    groups = [("", parsed.get("records", ()))]
                else:
                    groups = sorted(shards.items())
                for shard, encoded_records in groups:
                    for encoded in encoded_records:
                        record = decode_record(encoded)
                        key = shard or shard_of_lwg(record.lwg)
                        if owned is not None and key not in owned:
                            result.filtered += 1
                            continue
                        db.apply(record)
        log = self.storage.read(AREA_LOG)
        if log:
            lines = log.split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            elif lines:
                # No trailing newline: the final line is a torn write.
                lines.pop()
                result.log_truncated = True
            for line in lines:
                entry = _unframe(line)
                if entry is None:
                    result.quarantined += 1
                    continue
                self._replay_entry(db, entry, owned, result)
                result.log_entries += 1
        db.garbage_collect()
        return result

    def _replay_entry(
        self,
        db: NamingDatabase,
        entry: Dict[str, Any],
        owned: Optional[FrozenSet[str]],
        result: LoadResult,
    ) -> None:
        kind = entry.get("k")
        if kind == "rec":
            record = decode_record(entry["r"])
            parents = tuple(decode_view_id(p) for p in entry.get("p", ()))
            shard = entry.get("s") or shard_of_lwg(record.lwg)
            if owned is not None and shard not in owned:
                # Foreign shard: keep the ancestry (global), drop the
                # record — mirroring what the live replica stored.
                result.filtered += 1
                if parents:
                    db.absorb_genealogy({record.lwg_view: parents})
                    db.garbage_collect()
                return
            db.apply(record, parents)
        elif kind == "edges":
            self._replay_edges(db, entry.get("e", ()))
            # Mirrors reconciliation.absorb: fresh genealogy knowledge
            # can obsolete records of any LWG, so sweep everything.
            db.garbage_collect()
        # Unknown kinds are skipped: forward compatibility over failure.

    @staticmethod
    def _replay_edges(db: NamingDatabase, encoded_edges: Any) -> None:
        edges = {
            decode_view_id(child): tuple(decode_view_id(p) for p in parents)
            for child, parents in encoded_edges
        }
        if edges:
            db.absorb_genealogy(edges)

    # ------------------------------------------------------------------
    # Node meta: incarnation, view-seq, installed-view history
    # ------------------------------------------------------------------
    def load_meta(self) -> Dict[str, Any]:
        """The node-meta dict ({} if absent or corrupt)."""
        if self._meta_cache is not None:
            return dict(self._meta_cache)
        raw = self.storage.read(AREA_META)
        meta: Dict[str, Any] = {}
        if raw:
            parsed = _unframe(raw.rstrip(b"\n"))
            if isinstance(parsed, dict):
                meta = parsed
        self._meta_cache = dict(meta)
        return meta

    def save_meta(self, meta: Dict[str, Any]) -> None:
        self._meta_cache = dict(meta)
        self.storage.write(AREA_META, _frame(meta))

    def bump_incarnation(self, at_least: int = 0) -> int:
        """Advance and persist the node incarnation; returns the new value.

        Monotonic against both the durable value and ``at_least`` (the
        caller's surviving volatile counter), so even a corrupted meta
        area can never hand out a stale incarnation.
        """
        meta = self.load_meta()
        new = max(int(meta.get("incarnation", 0)), at_least) + 1
        meta["incarnation"] = new
        self.save_meta(meta)
        return new

    def incarnation(self) -> int:
        return int(self.load_meta().get("incarnation", 0))

    def persist_view_seq(self, view_seq: int) -> None:
        meta = self.load_meta()
        if int(meta.get("view_seq", 0)) < view_seq:
            meta["view_seq"] = view_seq
            self.save_meta(meta)

    def view_seq(self) -> int:
        return int(self.load_meta().get("view_seq", 0))

    def record_view(self, group: str, view_id: ViewId, incarnation: int) -> None:
        """Append one installed view to the bounded per-node history."""
        meta = self.load_meta()
        history = list(meta.get("views", ()))
        history.append([group, encode_view_id(view_id), incarnation])
        meta["views"] = history[-VIEW_HISTORY_LIMIT:]
        self.save_meta(meta)

    def view_history(self) -> List[Tuple[str, ViewId, int]]:
        out: List[Tuple[str, ViewId, int]] = []
        for entry in self.load_meta().get("views", ()):
            try:
                group, encoded, incarnation = entry
                out.append((str(group), decode_view_id(encoded), int(incarnation)))
            except (TypeError, ValueError):
                continue
        return out


# ----------------------------------------------------------------------
# Corruption injection (the fuzzer's ``corrupt_state`` modes)
# ----------------------------------------------------------------------
def inject_corruption(
    store: DurableStore,
    mode: str,
    rng: random.Random,
    db: Optional[NamingDatabase] = None,
) -> str:
    """Corrupt ``store``'s durable areas; returns a detail string.

    All randomness comes from ``rng`` over deterministic byte contents,
    so a replayed schedule corrupts the exact same bytes.  ``db`` (the
    pre-crash live database, when available) lets ``orphan_mapping``
    fabricate a plausible ghost record.
    """
    if mode == "truncated_log":
        log = store.storage.read(AREA_LOG)
        if not log:
            # Nothing journaled: chop the snapshot tail instead, which
            # the loader rejects wholesale (worst-case blank reboot).
            snap = store.storage.read(AREA_SNAPSHOT)
            if not snap:
                return "empty-store"
            keep = rng.randint(0, max(0, len(snap) - 1))
            store.storage.write(AREA_SNAPSHOT, snap[:keep])
            return f"snapshot-truncated@{keep}"
        keep = rng.randint(0, len(log) - 1)
        store.storage.write(AREA_LOG, log[:keep])
        return f"log-truncated@{keep}"
    if mode == "stale_snapshot":
        old = store.storage.read(AREA_SNAPSHOT_OLD)
        if old:
            store.storage.write(AREA_SNAPSHOT, old)
            store.storage.write(AREA_LOG, b"")
            store.log_entries = 0
            return "snapshot-rolled-back"
        store.storage.write(AREA_SNAPSHOT, b"")
        store.storage.write(AREA_LOG, b"")
        store.log_entries = 0
        return "state-dropped"
    if mode == "bit_flip":
        for area in (AREA_LOG, AREA_SNAPSHOT):
            data = store.storage.read(area)
            if not data:
                continue
            offset = rng.randrange(len(data))
            bit = rng.randrange(8)
            flipped = bytes(
                [data[offset] ^ (1 << bit)]
            )
            store.storage.write(area, data[:offset] + flipped + data[offset + 1:])
            return f"{area}-flip@{offset}.{bit}"
        return "empty-store"
    if mode == "orphan_mapping":
        # Plant a mapping for an LWG no process has ever registered — an
        # orphan.  It is deliberately *well-formed*: a new record key
        # plus a new genealogy child, exactly the shape of legitimate
        # remote knowledge, so the replication machinery must carry it
        # everywhere and converge byte-identically with it absorbed.
        # (Fabricating a new parent edge for an *existing* child would
        # instead be knowledge the exchange protocol can never ship —
        # live operation mints a view's parent set once, immutably, so
        # partial parent-sets are unreachable state, not corruption.)
        ghost_view = ViewId(coordinator="ghost", seq=rng.randint(1, 1 << 20))
        parent_view = ViewId(coordinator="ghost", seq=0)
        orphan = MappingRecord(
            lwg="lwg:orphan",
            lwg_view=ghost_view,
            lwg_members=("ghost",),
            hwg="hwg-ghost",
            hwg_view=ghost_view,
            version=1,
            writer="ghost",
        )
        store.storage.append(
            AREA_LOG,
            _frame(
                {
                    "k": "rec",
                    "r": encode_record(orphan),
                    "p": [encode_view_id(parent_view)],
                }
            ),
        )
        store.log_entries += 1
        return f"orphan:{orphan.lwg}@{ghost_view}"
    raise ValueError(f"unknown corruption mode {mode!r} (want one of {CORRUPTION_MODES})")
