"""Conflict detection and MULTIPLE-MAPPINGS notification.

The paper rejects polling ("this could load the servers with
unnecessary requests") in favour of callbacks: whenever a server's
database holds live mappings of one LWG onto *different* HWGs, it
notifies the coordinators of all affected LWG views (Section 6.1).

Notifications are re-sent periodically while a conflict persists —
callbacks ride the unreliable network, coordinators change, and the
switch that resolves the conflict may itself be disrupted by further
membership churn.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from ..vsync.view import ProcessId
from .database import NamingDatabase
from .messages import MultipleMappings
from .records import LwgId, MappingRecord

#: A conflict's identity: the set of (lwg_view, hwg) pairs involved.
ConflictSignature = FrozenSet[Tuple[str, str]]

SendCallback = Callable[[ProcessId, MultipleMappings], None]


class ConflictNotifier:
    """Tracks conflicts in a database and dispatches callbacks."""

    def __init__(
        self,
        server_id: ProcessId,
        send: SendCallback,
        clock: Callable[[], int],
        renotify_period_us: int = 600_000,
    ):
        self.server_id = server_id
        self.send = send
        self.clock = clock
        self.renotify_period_us = renotify_period_us
        self._last_sent: Dict[LwgId, Tuple[ConflictSignature, int]] = {}
        self.notifications_sent = 0

    @staticmethod
    def signature(records) -> ConflictSignature:
        return frozenset((str(r.lwg_view), r.hwg) for r in records)

    def check(self, db: NamingDatabase) -> int:
        """Scan ``db`` for conflicts; notify new or still-unresolved ones.

        Returns the number of MULTIPLE-MAPPINGS messages sent.
        """
        now = self.clock()
        sent = 0
        conflicts = db.conflicts()
        for lwg in list(self._last_sent):
            if lwg not in conflicts:
                del self._last_sent[lwg]  # resolved
        for lwg, records in conflicts.items():
            signature = self.signature(records)
            previous = self._last_sent.get(lwg)
            if previous is not None:
                prev_sig, prev_time = previous
                fresh = prev_sig == signature
                recent = (now - prev_time) < self.renotify_period_us
                if fresh and recent:
                    continue
            sent += self._notify(lwg, records)
            self._last_sent[lwg] = (signature, now)
        self.notifications_sent += sent
        return sent

    def _notify(self, lwg: LwgId, records) -> int:
        message = MultipleMappings(lwg=lwg, records=tuple(records), server=self.server_id)
        targets = sorted({record.coordinator for record in records})
        for target in targets:
            self.send(target, message)
        return len(targets)
