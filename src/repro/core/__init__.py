"""The paper's contribution: the partitionable light-weight group service.

Public surface:

* :class:`~repro.core.service.LwgService` — the dynamic, transparent,
  partitionable LWG service (Sections 3-6).
* :class:`~repro.core.service.LwgListener` / ``LwgHandle`` — the user API.
* :class:`~repro.core.baselines.NoLwgService` and
  :func:`~repro.core.baselines.make_static_service` — the Figure-2
  comparison baselines.
* :class:`~repro.core.policies.PolicyEngine` — the Figure-1 heuristics.
"""

from .baselines import (
    DirectHandle,
    NoLwgService,
    make_dynamic_service,
    make_isolated_service,
    make_static_service,
)
from .config import LwgConfig
from .ids import (
    highest_gid,
    hwg_in_zone,
    hwg_zone,
    is_hwg_id,
    is_lwg_id,
    lwg_id,
    mint_hwg_id,
)
from .lwg_view import merge_lwg_views, merged_view_id, restrict_view
from .mapping_policy import (
    DynamicMappingPolicy,
    HintedMappingPolicy,
    InitialMappingPolicy,
    IsolatedMappingPolicy,
    OptimizerMappingPolicy,
    StaticMappingPolicy,
)
from .placement import (
    OptimizerPlacementPolicy,
    PlacementCost,
    PlacementOptimizer,
    PlacementPlan,
    PlacementView,
)
from .mapping_table import LocalLwg, LwgState, MappingTable
from .merge import MergeManager, ReconciliationHandler
from .policies import (
    LeaveHwgAction,
    PolicyEngine,
    PolicySnapshot,
    SwitchAction,
    is_close_enough,
    is_minority,
    share_rule_applies,
)
from .service import LwgHandle, LwgListener, LwgService, LwgStats

__all__ = [
    "DirectHandle",
    "NoLwgService",
    "make_dynamic_service",
    "make_isolated_service",
    "make_static_service",
    "LwgConfig",
    "highest_gid",
    "hwg_in_zone",
    "hwg_zone",
    "is_hwg_id",
    "is_lwg_id",
    "lwg_id",
    "mint_hwg_id",
    "merge_lwg_views",
    "merged_view_id",
    "restrict_view",
    "DynamicMappingPolicy",
    "HintedMappingPolicy",
    "InitialMappingPolicy",
    "IsolatedMappingPolicy",
    "OptimizerMappingPolicy",
    "StaticMappingPolicy",
    "OptimizerPlacementPolicy",
    "PlacementCost",
    "PlacementOptimizer",
    "PlacementPlan",
    "PlacementView",
    "LocalLwg",
    "LwgState",
    "MappingTable",
    "MergeManager",
    "ReconciliationHandler",
    "LeaveHwgAction",
    "PolicyEngine",
    "PolicySnapshot",
    "SwitchAction",
    "is_close_enough",
    "is_minority",
    "share_rule_applies",
    "LwgHandle",
    "LwgListener",
    "LwgService",
    "LwgStats",
]
