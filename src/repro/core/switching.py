"""The switching protocol: re-mapping an LWG between HWGs at run time.

The switch is the run-time corrective of the dynamic service (triggered
by the Figure-1 rules) *and* the reconciliation mechanism of Section 6.2
(triggered by MULTIPLE-MAPPINGS callbacks).  It preserves the LWG's
virtual synchrony by using the old HWG's total order as the cut:

1. ``SwitchStart`` (ordered on the old HWG) — members suspend new LWG
   sends (buffering them) and join the target HWG;
2. each member multicasts ``SwitchReady`` (on the old HWG) once its
   membership of the target HWG is installed;
3. when every member is ready, the coordinator multicasts
   ``SwitchCommit`` — totally ordered, so every member cuts over after
   delivering exactly the same set of LWG messages.  Remaining old-HWG
   members install a *forward pointer*; buffered sends flow on the new
   HWG; the coordinator re-registers the mapping in the naming service.

Crucially the LWG *view identifier does not change* across a switch —
Table 4 (stage 3) shows ``lwg_a`` and ``lwg'_a`` keeping their ids while
moving onto ``hwg''_1``.  Only the view-to-view mapping is rewritten.

A switch that cannot complete (member crash, target unreachable) is
aborted by the coordinator after a timeout; members also clear stale
switch state on their own timer so a dead coordinator cannot wedge them.
"""

from __future__ import annotations

from typing import Optional, Set

from ..naming.records import HwgId, LwgId
from ..vsync.membership import EndpointState
from .mapping_table import LocalLwg
from .messages import SwitchAbort, SwitchCommit, SwitchReady, SwitchStart


class SwitchDriver:
    """Coordinator-side state machine for one switch of one LWG."""

    def __init__(self, service, local: LocalLwg, to_hwg: Optional[HwgId], reason: str):
        self.svc = service
        self.local = local
        self.lwg: LwgId = local.lwg
        assert local.view is not None and local.hwg is not None
        self.from_hwg: HwgId = local.hwg
        self.to_hwg: HwgId = to_hwg or service.mint_hwg_id()
        self.reason = reason
        self.epoch = service.next_switch_epoch()
        self.ready: Set[str] = set()
        self.committed = False
        self.aborted = False
        self._timer = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.svc.trace(
            "switch_start",
            lwg=self.lwg,
            from_hwg=self.from_hwg,
            to_hwg=self.to_hwg,
            reason=self.reason,
            epoch=self.epoch,
        )
        assert self.local.view is not None
        message = SwitchStart(
            lwg=self.lwg,
            view_id=self.local.view.view_id,
            from_hwg=self.from_hwg,
            to_hwg=self.to_hwg,
            epoch=self.epoch,
        )
        self.svc.hwg_send(self.from_hwg, message)
        self._timer = self.svc.stack.set_timer(
            self.svc.config.switch_timeout_us, self._timeout
        )

    def _timeout(self) -> None:
        if not self.committed and not self.aborted:
            self.abort("timeout")

    def abort(self, why: str) -> None:
        """Give up: members resume LWG traffic on the old HWG."""
        self.aborted = True
        if self._timer is not None:
            self._timer.cancel()
        self.svc.trace("switch_abort", lwg=self.lwg, epoch=self.epoch, why=why)
        if self.local.view is None:
            # Our own LWG membership was reset mid-switch (forced out or
            # left): there is no view left to unblock — members clear
            # stale switch state on their own timer.
            return
        self.svc.hwg_send(
            self.from_hwg,
            SwitchAbort(lwg=self.lwg, view_id=self.local.view.view_id, epoch=self.epoch),
        )

    # ------------------------------------------------------------------
    # Events (routed by the service from ordered old-HWG traffic)
    # ------------------------------------------------------------------
    def on_ready(self, message: SwitchReady) -> None:
        if message.epoch != self.epoch or self.committed or self.aborted:
            return
        self.ready.add(message.member)
        self._check_complete()

    def on_lwg_view_changed(self) -> None:
        """The LWG view shrank mid-switch (restriction): recheck readiness."""
        if not self.committed and not self.aborted:
            self._check_complete()

    def _check_complete(self) -> None:
        if self.local.view is None:
            return  # record reset mid-switch; the timeout will abort us
        needed = set(self.local.view.members)
        if needed <= self.ready:
            self.committed = True
            if self._timer is not None:
                self._timer.cancel()
            self.svc.hwg_send(
                self.from_hwg,
                SwitchCommit(
                    lwg=self.lwg,
                    view_id=self.local.view.view_id,
                    to_hwg=self.to_hwg,
                    epoch=self.epoch,
                ),
            )

    @property
    def finished(self) -> bool:
        return self.committed or self.aborted
