"""Per-process LWG-layer state: local memberships and the HWG directory.

Each process tracks two things:

* :class:`LocalLwg` — for every LWG this process belongs to (or is
  joining/leaving): its current LWG view, the HWG it rides on, the user
  listener and ancestry of the view.
* :class:`HwgDirectory` — for every HWG this process belongs to: which
  LWG views are known to be mapped on it (learned from ``LwgViewMsg``
  announcements in the HWG's total order) and the *forward pointers* for
  LWGs that were switched away ("all members of a HWG keep information
  about the new mappings of previously mapped LWGs... used like a
  forward-pointer, to redirect a process that is using outdated mapping
  information", Section 3.1).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..naming.records import HwgId, LwgId
from ..vsync.view import ProcessId, View, ViewId
from .lwg_view import AncestorTracker


class LwgState(enum.Enum):
    """Lifecycle of this process's membership in one LWG."""

    IDLE = "idle"
    JOINING = "joining"
    MEMBER = "member"
    LEAVING = "leaving"


class LocalLwg:
    """This process's state for one light-weight group."""

    def __init__(self, lwg: LwgId, listener: Any):
        self.lwg = lwg
        self.listener = listener
        self.state = LwgState.IDLE
        self.view: Optional[View] = None
        self.hwg: Optional[HwgId] = None
        self.ancestors = AncestorTracker()
        #: Sends queued while joining or mid-switch.
        self.pending_sends: List[Tuple[Any, int]] = []
        #: Set while a fresh joiner waits for the coordinator's state
        #: snapshot; data for this view is buffered until it arrives.
        self.awaiting_state_for: Optional[ViewId] = None
        self.state_buffer: List[Tuple[ProcessId, Any, int]] = []
        #: Set while the switch protocol moves this LWG between HWGs.
        self.switch_epoch: Optional[int] = None
        self.switch_target: Optional[HwgId] = None
        self.switch_ready_epoch: Optional[int] = None
        #: Coordinator-side head of the minted-view chain: the most recent
        #: successor view we multicast but have not yet seen delivered.
        self.minted_head: Optional[View] = None
        self.views_installed = 0
        self.delivered = 0
        #: Last sim time we saw life from our view's coordinator (an
        #: install, an announce, or its data) — the coordinator-silence
        #: backstop's clock.
        self.last_coordinator_heard = 0
        #: Sim time of the last view installation — the placement
        #: optimizer's stability clock (it only moves settled LWGs).
        self.last_view_change_us = 0

    @property
    def is_member(self) -> bool:
        return self.state is LwgState.MEMBER and self.view is not None

    def coordinator(self) -> Optional[ProcessId]:
        return self.view.members[0] if self.view is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vid = str(self.view.view_id) if self.view else "-"
        return f"LocalLwg({self.lwg}, {self.state.value}, view={vid}, hwg={self.hwg})"


class HwgDirectory:
    """What this process knows about one HWG's light-weight cargo."""

    def __init__(self, hwg: HwgId):
        self.hwg = hwg
        #: Latest known LWG view per LWG mapped on this HWG.
        self.views: Dict[LwgId, View] = {}
        #: LWGs switched away from this HWG -> where they went.
        self.forward: Dict[LwgId, HwgId] = {}
        #: Sim time when this HWG last carried a local LWG (shrink rule).
        self.last_useful_at = 0

    def record_view(self, view: View) -> None:
        """Track the newest view announcement for ``view.group``."""
        self.views[view.group] = view
        self.forward.pop(view.group, None)

    def remove_lwg(self, lwg: LwgId, forward_to: Optional[HwgId] = None) -> None:
        self.views.pop(lwg, None)
        if forward_to is not None:
            self.forward[lwg] = forward_to

    def prune_members(self, alive: Set[ProcessId]) -> List[LwgId]:
        """Drop directory views with no surviving member; return the dropped."""
        dropped = []
        for lwg, view in list(self.views.items()):
            if not (set(view.members) & alive):
                del self.views[lwg]
                dropped.append(lwg)
        return dropped


class MappingTable:
    """All LWG-layer state of one process."""

    def __init__(self) -> None:
        self.locals: Dict[LwgId, LocalLwg] = {}
        self.directory: Dict[HwgId, HwgDirectory] = {}

    def local(self, lwg: LwgId) -> Optional[LocalLwg]:
        return self.locals.get(lwg)

    def ensure_local(self, lwg: LwgId, listener: Any) -> LocalLwg:
        entry = self.locals.get(lwg)
        if entry is None:
            entry = LocalLwg(lwg, listener)
            self.locals[lwg] = entry
        elif listener is not None:
            entry.listener = listener
        return entry

    def dir_for(self, hwg: HwgId) -> HwgDirectory:
        entry = self.directory.get(hwg)
        if entry is None:
            entry = HwgDirectory(hwg)
            self.directory[hwg] = entry
        return entry

    def local_lwgs_on(self, hwg: HwgId) -> List[LocalLwg]:
        """LWGs this process belongs to that ride on ``hwg``."""
        return [
            entry
            for entry in self.locals.values()
            if entry.hwg == hwg and entry.state in (LwgState.MEMBER, LwgState.LEAVING)
        ]

    def member_lwgs(self) -> List[LocalLwg]:
        return [e for e in self.locals.values() if e.is_member]

    def coordinated_lwgs(self, node: ProcessId) -> List[LocalLwg]:
        """LWGs whose current view this process coordinates."""
        return [e for e in self.member_lwgs() if e.coordinator() == node]

    def hwgs_in_use(self) -> Set[HwgId]:
        """HWGs currently carrying (or targeted by) one of our LWGs."""
        used: Set[HwgId] = set()
        for entry in self.locals.values():
            if entry.hwg is not None and entry.state is not LwgState.IDLE:
                used.add(entry.hwg)
            if entry.switch_target is not None:
                used.add(entry.switch_target)
        return used
