"""Configuration of the light-weight group service.

The defaults mirror the paper's prototype: ``k_m = 4`` and ``k_c = 4``
(a LWG is mapped onto an HWG when their common members exceed 75% of the
HWG and the mapping stays until that drops to 25%), and heuristics run
"periodically with a relatively large period (in the prototype we ran
them once every minute)".  Simulated scenarios usually scale the policy
period down to keep runs short — the ratio between policy period and
protocol latencies is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.engine import SECOND


@dataclass
class LwgConfig:
    """Tunables of the LWG service (times in microseconds)."""

    # Figure-1 heuristic parameters.
    k_m: int = 4
    k_c: int = 4
    #: How often the mapping heuristics run at each process.
    policy_period_us: int = 60 * SECOND
    #: LWG→HWG placement strategy for the periodic re-evaluation:
    #: ``"paper"`` runs the Figure-1 share/interference rules verbatim;
    #: ``"optimizer"`` replaces them with the global placement optimizer
    #: (:mod:`repro.core.placement`).  The shrink rule runs under both.
    placement_policy: str = "paper"
    #: Optimizer knobs (ignored under ``"paper"``).  At most this many
    #: switches are emitted per evaluation — convergence spreads over
    #: policy periods instead of storming the switch protocol.
    placement_max_switches: int = 4
    #: The plan must beat the current assignment's cost by this fraction
    #: (with an absolute floor below) before any switch is emitted.
    placement_hysteresis: float = 0.05
    placement_min_gain: float = 1.0
    #: Local-search bounds: refinement passes and swap-pair budget.
    placement_max_passes: int = 3
    placement_swap_budget: int = 256
    #: An LWG is only movable once its view has been stable this long.
    #: Moving a group mid-join churns the member set of two HWGs at
    #: once and races the joiners' own HWG joins; waiting out the churn
    #: costs one extra evaluation and avoids the storm entirely.
    placement_settle_us: int = 5 * SECOND
    #: Master switches for the adaptive machinery (baselines turn them off).
    enable_policies: bool = True
    enable_reconciliation: bool = True
    #: An HWG membership with no local LWG mapped must persist this long
    #: before the shrink rule makes the process leave it.
    shrink_grace_us: int = 2 * SECOND
    #: Joiner timeouts: waiting for the LWG view after sending a join
    #: request, before re-reading the naming service and retrying.
    join_retry_us: int = 1 * SECOND
    #: How long the joiner waits for the LWG to show up on the mapped HWG
    #: before concluding the mapping is stale and (re)creating the LWG.
    join_claim_us: int = 2 * SECOND
    #: Switch protocol: how long the coordinator waits for every member
    #: to reach the target HWG before aborting the switch.
    switch_timeout_us: int = 5 * SECOND
    #: LWG coordinators re-announce their view on their HWG at this
    #: period.  This is the liveness backstop for local peer discovery
    #: (Section 6.3): Figure 5's trigger is DATA traffic, so two quiet
    #: concurrent views co-mapped on one HWG would otherwise never merge.
    announce_period_us: int = 2 * SECOND
    #: A non-coordinator member that hears nothing from its view's
    #: coordinator (no announce, no install, no data) for this long
    #: concludes the view was abandoned — the coordinator moved on via a
    #: racing switch or asymmetric partition-heal merge — and rejoins
    #: through the naming service.  The HWG cannot signal this case: the
    #: coordinator is alive and still an HWG member, it just no longer
    #: maps this LWG here.  Keep this a few announce periods long.
    coordinator_silence_us: int = 6 * SECOND
    #: Coordinators re-read the naming service at this period and
    #: re-register their mapping if the record is gone.  Replication
    #: normally outlives any single server failure, but a record written
    #: to one replica inside a partition can be destroyed (crash with a
    #: corrupted store) before anti-entropy spreads it — and a *missing*
    #: record raises no MULTIPLE-MAPPINGS callback, so only the
    #: authoritative writer can notice.  This audit is the self-healing
    #: backstop for that silent-loss case.
    mapping_audit_period_us: int = 4 * SECOND
    #: Default payload size assumed for user messages without one.
    default_payload_bytes: int = 256
    #: Data-path batching: coalesce LWG DATA payloads bound for the same
    #: HWG into one multicast.  The window/byte cap bound the added
    #: latency; batches also flush eagerly before any LWG control
    #: message and before an HWG view change (the flush-before-view-
    #: change rule, PROTOCOLS.md §15).
    enable_batching: bool = True
    #: How long the packer may hold the first buffered payload before
    #: flushing.  Deliberately *not* scaled by :meth:`scaled` — it bounds
    #: data latency, not protocol timeouts.
    batch_window_us: int = 2_000
    #: Flush immediately once the buffered payload bytes reach this cap
    #: (keeps batches under transport datagram ceilings).
    batch_max_bytes: int = 16_384

    def __post_init__(self) -> None:
        if self.placement_policy not in ("paper", "optimizer"):
            raise ValueError(f"unknown placement_policy: {self.placement_policy!r}")

    def scaled(self, factor: float) -> "LwgConfig":
        """A copy with every timer multiplied by ``factor``."""
        return replace(
            self,
            policy_period_us=int(self.policy_period_us * factor),
            shrink_grace_us=int(self.shrink_grace_us * factor),
            join_retry_us=int(self.join_retry_us * factor),
            join_claim_us=int(self.join_claim_us * factor),
            switch_timeout_us=int(self.switch_timeout_us * factor),
            announce_period_us=int(self.announce_period_us * factor),
            coordinator_silence_us=int(self.coordinator_silence_us * factor),
            placement_settle_us=int(self.placement_settle_us * factor),
        )
