"""The Figure-2 comparison services: no-LWG and static-LWG.

The paper's evaluation compares three ways to run the same user groups:

* **no LWG service** — every user group is its own virtually synchronous
  (heavy-weight) group.  :class:`NoLwgService` is a thin facade mapping
  the user API directly onto :class:`~repro.vsync.hwg.HwgEndpoint`, with
  no LWG layer at all (no encapsulation, no filtering, no naming
  traffic) — exactly what an application would do without the service.
* **static LWG service** — every user group is an LWG statically mapped
  onto one global HWG shared by everybody.  Implemented as the real
  :class:`~repro.core.service.LwgService` with a
  :class:`~repro.core.mapping_policy.StaticMappingPolicy` and the
  adaptive machinery disabled, so it pays the full interference cost the
  dynamic policies exist to avoid.
* **dynamic LWG service** — the real thing (:func:`make_dynamic_service`).

All three expose the same ``join(name, listener) -> handle`` shape so
benchmarks drive them identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from ..naming.client import NamingClient
from ..vsync.hwg import HwgListener
from ..vsync.view import View
from .config import LwgConfig
from .ids import lwg_id as canonical_lwg_id
from .mapping_policy import IsolatedMappingPolicy, StaticMappingPolicy
from .service import LwgHandle, LwgListener, LwgService


class _DirectAdapter(HwgListener):
    """Adapts HWG upcalls to the LwgListener shape for the no-LWG facade."""

    def __init__(self, name: str, listener: LwgListener):
        self.name = name
        self.listener = listener

    def on_view(self, group, view: View) -> None:
        self.listener.on_view(self.name, view)

    def on_data(self, group, src, payload, size) -> None:
        self.listener.on_data(self.name, src, payload, size)

    def on_left(self, group) -> None:
        self.listener.on_left(self.name)


class DirectHandle:
    """Handle over a raw HWG endpoint (API-compatible with LwgHandle)."""

    def __init__(self, endpoint, name: str):
        self._endpoint = endpoint
        self.lwg = name

    def send(self, payload: Any, size: Optional[int] = None) -> None:
        self._endpoint.send(payload, size if size is not None else 256)

    def leave(self) -> None:
        self._endpoint.leave()

    @property
    def view(self) -> Optional[View]:
        return self._endpoint.current_view

    @property
    def is_member(self) -> bool:
        return self._endpoint.current_view is not None

    @property
    def hwg(self) -> str:
        return self._endpoint.group


class NoLwgService:
    """Baseline: one heavy-weight group per user group, no LWG layer."""

    def __init__(self, stack):
        self.stack = stack
        self.node = stack.node
        self._handles: Dict[str, DirectHandle] = {}

    @staticmethod
    def _group_for(name: str) -> str:
        # A dedicated HWG per user group; same id at every process.
        return f"hwg:direct:{name}"

    def join(self, name: str, listener: Optional[LwgListener] = None) -> DirectHandle:
        group = self._group_for(name)
        endpoint = self.stack.endpoint(
            group, _DirectAdapter(name, listener or LwgListener())
        )
        endpoint.join()
        handle = DirectHandle(endpoint, name)
        self._handles[name] = handle
        return handle

    def leave(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.leave()

    def send(self, name: str, payload: Any, size: Optional[int] = None) -> None:
        self._handles[name].send(payload, size)


def static_config(base: Optional[LwgConfig] = None) -> LwgConfig:
    """The static service: no policies, no reconciliation, fixed mapping."""
    base = base or LwgConfig()
    return replace(base, enable_policies=False, enable_reconciliation=False)


def make_static_service(
    stack,
    naming: NamingClient,
    config: Optional[LwgConfig] = None,
    hwg: str = "hwg:static:000000",
) -> LwgService:
    """A static light-weight group service: everything on one global HWG."""
    return LwgService(
        stack,
        naming,
        config=static_config(config),
        mapping_policy=StaticMappingPolicy(hwg),
    )


def make_dynamic_service(
    stack,
    naming: NamingClient,
    config: Optional[LwgConfig] = None,
) -> LwgService:
    """The paper's transparent dynamic (and partitionable) LWG service."""
    return LwgService(stack, naming, config=config)


def make_isolated_service(
    stack,
    naming: NamingClient,
    config: Optional[LwgConfig] = None,
) -> LwgService:
    """Ablation: the LWG layer with a private HWG per LWG (no sharing)."""
    return LwgService(
        stack,
        naming,
        config=static_config(config),
        mapping_policy=IsolatedMappingPolicy(),
    )
