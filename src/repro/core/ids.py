"""Identifier conventions for light-weight and heavy-weight groups.

Both kinds of identifier are plain strings with a sortable structure;
the *total order on group identifiers* is ordinary string comparison.
The paper relies on this order twice: deterministic tie-breaking in the
mapping heuristics (Section 3.2) and the reconciliation rule "switch to
the HWG with highest group identifier" (Section 6.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..vsync.view import ProcessId

LWG_PREFIX = "lwg:"
HWG_PREFIX = "hwg:"


def lwg_id(name: str) -> str:
    """Canonical LWG identifier for a user-level group name."""
    return name if name.startswith(LWG_PREFIX) else f"{LWG_PREFIX}{name}"


def mint_hwg_id(creator: ProcessId, counter: int, zone: Optional[int] = None) -> str:
    """A fresh, globally unique HWG identifier.

    Uniqueness comes from (creator, per-creator counter); the zero-padded
    counter keeps string order consistent with creation order per node.
    Under the zoned topology (PROTOCOLS.md §20) the creator's zone is
    tagged into the identifier, making HWG pools zone-scoped: mapping
    policies only co-map LWGs onto pools minted in their own zone.
    """
    if zone is None:
        return f"{HWG_PREFIX}{creator}:{counter:06d}"
    return f"{HWG_PREFIX}z{zone:03d}:{creator}:{counter:06d}"


def hwg_zone(identifier: str) -> Optional[int]:
    """The zone an HWG id was minted in, or None for flat-minted ids."""
    if not identifier.startswith(HWG_PREFIX):
        return None
    rest = identifier[len(HWG_PREFIX):]
    if not rest.startswith("z"):
        return None
    head = rest[1:].split(":", 1)[0]
    return int(head) if head.isdigit() else None


def hwg_in_zone(identifier: str, zone: Optional[int]) -> bool:
    """True when an HWG pool is usable from ``zone``.

    Flat-minted ids are zone-neutral (usable everywhere); zone-tagged
    ids are usable only from their own zone.  ``zone=None`` (a flat
    node) accepts everything — the knob only bites under "zoned".
    """
    if zone is None:
        return True
    tagged = hwg_zone(identifier)
    return tagged is None or tagged == zone

def is_hwg_id(identifier: str) -> bool:
    return identifier.startswith(HWG_PREFIX)


def is_lwg_id(identifier: str) -> bool:
    return identifier.startswith(LWG_PREFIX)


def highest_gid(identifiers: Iterable[str]) -> Optional[str]:
    """The maximum identifier under the global total order (or None)."""
    ids = list(identifiers)
    return max(ids) if ids else None
