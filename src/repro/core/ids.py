"""Identifier conventions for light-weight and heavy-weight groups.

Both kinds of identifier are plain strings with a sortable structure;
the *total order on group identifiers* is ordinary string comparison.
The paper relies on this order twice: deterministic tie-breaking in the
mapping heuristics (Section 3.2) and the reconciliation rule "switch to
the HWG with highest group identifier" (Section 6.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..vsync.view import ProcessId

LWG_PREFIX = "lwg:"
HWG_PREFIX = "hwg:"


def lwg_id(name: str) -> str:
    """Canonical LWG identifier for a user-level group name."""
    return name if name.startswith(LWG_PREFIX) else f"{LWG_PREFIX}{name}"


def mint_hwg_id(creator: ProcessId, counter: int) -> str:
    """A fresh, globally unique HWG identifier.

    Uniqueness comes from (creator, per-creator counter); the zero-padded
    counter keeps string order consistent with creation order per node.
    """
    return f"{HWG_PREFIX}{creator}:{counter:06d}"

def is_hwg_id(identifier: str) -> bool:
    return identifier.startswith(HWG_PREFIX)


def is_lwg_id(identifier: str) -> bool:
    return identifier.startswith(LWG_PREFIX)


def highest_gid(identifiers: Iterable[str]) -> Optional[str]:
    """The maximum identifier under the global total order (or None)."""
    ids = list(identifiers)
    return max(ids) if ids else None
