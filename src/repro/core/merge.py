"""Partition reconciliation at the LWG layer (paper Section 6).

Two cooperating pieces:

* :class:`ReconciliationHandler` — steps 1-2.  The naming service's
  MULTIPLE-MAPPINGS callback (global peer discovery) tells an LWG-view
  coordinator that concurrent views of its LWG are mapped onto different
  HWGs; the coordinator deterministically yields to the **highest group
  identifier** — if its own HWG is not the winner it switches its view
  there, otherwise it keeps its mapping ("the view lwg_a needs to be
  switched and the view lwg'_a should keep the same mapping").

* :class:`MergeManager` — steps 3-4, the Figure-5 protocol.  Once
  concurrent LWG views share an HWG view, any member that sees evidence
  of concurrency (a DATA tagged with a concurrent view id — Figure 5
  line 106 — or a concurrent view announcement) multicasts MERGE-VIEWS.
  Every member answers with ALL-VIEWS (its local LWG views on that HWG);
  the HWG coordinator forces a flush; and at the resulting view
  installation every member deterministically merges *all* concurrent
  views of *all* LWGs collected — one flush amortised over every LWG on
  the HWG, which is the protocol's resource-sharing claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..naming.messages import MultipleMappings
from ..naming.records import HwgId, LwgId, MappingRecord
from ..vsync.view import View, ViewId
from .ids import highest_gid
from .lwg_view import merge_lwg_views
from .mapping_table import LocalLwg, LwgState
from .messages import AllViewsMsg, MergeViewsMsg


class MergeManager:
    """Figure-5 merge-views protocol state, per underlying HWG."""

    def __init__(self, service):
        self.svc = service
        #: hwg -> lwg -> view_id -> view: the AV_p(hwg) sets of Figure 5.
        self._collected: Dict[HwgId, Dict[LwgId, Dict[ViewId, View]]] = {}
        #: HWGs on which we already multicast MERGE-VIEWS this round.
        self._requested: Set[HwgId] = set()
        #: HWGs on which we already answered with ALL-VIEWS this round.
        self._responded: Set[HwgId] = set()
        #: Ordered join/leave requests held back until the round's flush.
        self._deferred: Dict[HwgId, List[Tuple[str, object]]] = {}
        #: Monotonic per-HWG token distinguishing rounds for retry timers.
        self._round_token: Dict[HwgId, int] = {}
        #: hwg -> view ids with an ordered SWITCH-START pending (not yet
        #: committed or aborted) — see :meth:`observe_switch_start`.
        self._switching: Dict[HwgId, Set[ViewId]] = {}
        #: hwg -> view ids whose switch committed: the view left this
        #: HWG at an ordered cut and must never merge here again.
        self._departed: Dict[HwgId, Set[ViewId]] = {}
        self.merges_completed = 0
        self.merge_rounds = 0

    def round_active(self, hwg: HwgId) -> bool:
        """True while a merge round is running on ``hwg``.

        Coordinators must not mint successor LWG views during a round:
        a minted view whose ordered message lands *after* the flush would
        be missing from the equalised collected set, so the merge would
        not descend from it — lineage divergence.  Join/leave requests
        are deferred instead (see :meth:`defer` / :meth:`take_deferred`).
        """
        return hwg in self._responded or hwg in self._requested

    def defer(self, hwg: HwgId, kind: str, message: object) -> None:
        """Hold an ordered request back until the round completes.

        Every member buffers the same ordered prefix, so deferral keeps
        processing uniform across the group.
        """
        self._deferred.setdefault(hwg, []).append((kind, message))

    def take_deferred(self, hwg: HwgId) -> List[Tuple[str, object]]:
        return self._deferred.pop(hwg, [])

    # ------------------------------------------------------------------
    # Triggering (Figure 5, lines 106-107)
    # ------------------------------------------------------------------
    #: If a round's flush has not happened within this window, the round
    #: state is reset and MERGE-VIEWS re-multicast.  A round can wedge
    #: when its trigger message is lost in extreme churn (e.g. a flush
    #: cut drops it and the cross-view republish is cancelled by a
    #: dedup floor that advanced in a concurrent branch); without a
    #: retry, the stuck round would suppress all future triggers.
    ROUND_RETRY_US = 4_000_000

    def trigger(self, hwg: HwgId, lwg: LwgId) -> None:
        """Multicast MERGE-VIEWS on ``hwg`` (once per round, retried)."""
        if hwg in self._requested:
            return
        self._requested.add(hwg)
        self.merge_rounds += 1
        self._round_token[hwg] = self._round_token.get(hwg, 0) + 1
        token = self._round_token[hwg]
        self.svc.trace("merge_views_triggered", hwg=hwg, lwg=lwg)
        self.svc.hwg_send(hwg, MergeViewsMsg(lwg=lwg))

        def retry() -> None:
            if self._round_token.get(hwg) != token:
                return  # a flush completed (or a newer round started)
            if hwg not in self._requested and hwg not in self._responded:
                return
            self.svc.trace("merge_round_retry", hwg=hwg, lwg=lwg)
            self._requested.discard(hwg)
            self._responded.discard(hwg)
            self.trigger(hwg, lwg)

        self.svc.stack.set_timer(self.ROUND_RETRY_US, retry)

    # ------------------------------------------------------------------
    # Protocol messages (ordered on the HWG)
    # ------------------------------------------------------------------
    def on_merge_views(self, hwg: HwgId, message: MergeViewsMsg) -> None:
        """Figure 5, lines 108-111."""
        if hwg not in self._responded:
            self._responded.add(hwg)
            local_views = tuple(
                entry.view
                for entry in self.svc.table.local_lwgs_on(hwg)
                if entry.view is not None
            )
            self.svc.hwg_send(
                hwg, AllViewsMsg(lwg=message.lwg, sender=self.svc.node, views=local_views)
            )
        endpoint = self.svc.hwg_endpoint(hwg)
        if endpoint is not None:
            # "The coordinator of the HWG flushes the HWG" — a no-op at
            # everyone else, and idempotent until a new view installs.
            endpoint.force_refresh()

    def on_all_views(self, hwg: HwgId, message: AllViewsMsg) -> None:
        """Figure 5, lines 112-113: AV_p(hwg) := AV_p(hwg) ∪ V_q."""
        per_lwg = self._collected.setdefault(hwg, {})
        for view in message.views:
            per_lwg.setdefault(view.group, {})[view.view_id] = view
        # A straggler ALL-VIEWS (re-published after a view change) may
        # reveal concurrency we have not merged yet: re-trigger.
        for view in message.views:
            local = self.svc.table.local(view.group)
            if (
                local is not None
                and local.is_member
                and local.hwg == hwg
                and local.ancestors.concurrent_with_current(local.view, view.view_id)
            ):
                self.trigger(hwg, view.group)

    # ------------------------------------------------------------------
    # Switch/merge serialisation
    # ------------------------------------------------------------------
    # The switch protocol and a merge round can race on the same HWG:
    # both ride its total order, but the merge's candidate set is frozen
    # at the flush while a switch moves a view away at its COMMIT.  If
    # the commit is ordered before the flush, the switching member skips
    # the merge ("switched away mid-round") while the others would merge
    # a view whose members are gone — minting a view that only a subset
    # installs and whose coordinator never announces or registers it: a
    # permanent stranding (no naming conflict remains to heal it).  The
    # switch messages are ordered, hence common knowledge: every member
    # excludes in-flight and departed views from the candidate set
    # identically.
    def observe_switch_start(self, hwg: HwgId, view_id: ViewId) -> None:
        self._switching.setdefault(hwg, set()).add(view_id)

    def observe_switch_abort(self, hwg: HwgId, view_id: ViewId) -> None:
        self._switching.get(hwg, set()).discard(view_id)

    def observe_switch_commit(self, hwg: HwgId, view_id: ViewId) -> None:
        self._switching.get(hwg, set()).discard(view_id)
        self._departed.setdefault(hwg, set()).add(view_id)
        # Drop it from any collected set too; a straggler ALL-VIEWS may
        # still re-add it, which is why _merge_one filters as well.
        per_lwg = self._collected.get(hwg)
        if per_lwg:
            for views_by_id in per_lwg.values():
                views_by_id.pop(view_id, None)

    def observe_view_msg(self, hwg: HwgId, view_id: ViewId) -> None:
        """An ordered LWG view message for ``view_id`` landed on ``hwg``.

        Only the view's coordinator multicasts these, and the same
        coordinator multicasts the view's SWITCH-COMMIT — so by
        sender-FIFO ordering, a view message delivered *after* a commit
        was sent after it: the view genuinely returned to this HWG
        (switches can round-trip, e.g. interference policy out,
        reconciliation back).  Lift the departure block, or the view
        could never merge here again.
        """
        self._departed.get(hwg, set()).discard(view_id)

    def _blocked(self, hwg: HwgId) -> Set[ViewId]:
        return self._switching.get(hwg, set()) | self._departed.get(hwg, set())

    def observe_view(self, hwg: HwgId, view: View) -> None:
        """An ordered LWG view message was delivered during a merge round.

        View installations ride the same total order as ALL-VIEWS and the
        flush, so adding them to the collected set keeps it identical at
        every member — this is what makes a view installed *after* a
        member answered ALL-VIEWS (but before the flush) merge correctly
        and uniformly.
        """
        if hwg in self._responded or hwg in self._requested:
            per_lwg = self._collected.setdefault(hwg, {})
            per_lwg.setdefault(view.group, {})[view.view_id] = view

    # ------------------------------------------------------------------
    # The flush point (Figure 5, lines 114-118)
    # ------------------------------------------------------------------
    def on_hwg_view(self, hwg: HwgId, view: View) -> None:
        """An HWG view installed: merge everything collected for it."""
        was_active = hwg in self._requested or hwg in self._responded
        collected = self._collected.pop(hwg, {})
        self._requested.discard(hwg)
        self._responded.discard(hwg)
        self._round_token[hwg] = self._round_token.get(hwg, 0) + 1
        if was_active:
            self.svc.trace("merge_round_completed", hwg=hwg)
        if not collected:
            return
        alive = set(view.members)
        for lwg, views_by_id in sorted(collected.items()):
            self._merge_one(hwg, view, lwg, views_by_id, alive)

    def _merge_one(
        self,
        hwg: HwgId,
        hwg_view: View,
        lwg: LwgId,
        views_by_id: Dict[ViewId, View],
        alive: Set[str],
    ) -> None:
        # Every input below is identical at every member (the collected
        # set is equalised by the flush), so the merge is a pure function
        # of common knowledge — the "decentralized and deterministic"
        # requirement of Figure 5.  No node-local state (our ancestor
        # tracker, our current view) may influence the candidate set:
        # node-dependent inputs make different members mint *different*
        # merged views, which then look mutually concurrent and feed an
        # unbounded merge storm.
        #
        # 1. Views with members that did not survive the flush are left
        #    for the restriction path (a later round unifies the rest).
        #    Views mid-switch or committed away are excluded identically
        #    at every member (their switch messages are ordered — see
        #    the serialisation note above).
        blocked = self._blocked(hwg)
        candidates = [
            v
            for v in views_by_id.values()
            if set(v.members) <= alive and v.view_id not in blocked
        ]
        # 2. Intra-set staleness: a collected view that is an ancestor of
        #    another collected view (judged by the parent chains present
        #    in the set itself) is superseded, not concurrent.
        ids = {v.view_id for v in candidates}
        parent_map = {v.view_id: v.parents for v in candidates}
        stale: Set[ViewId] = set()
        for view in candidates:
            stack = list(view.parents)
            seen: Set[ViewId] = set()
            while stack:
                parent = stack.pop()
                if parent in seen:
                    continue
                seen.add(parent)
                if parent in ids:
                    stale.add(parent)
                stack.extend(parent_map.get(parent, ()))
        candidates = [v for v in candidates if v.view_id not in stale]
        if len({v.view_id for v in candidates}) < 2:
            # One survivor: nothing to merge — but if *our* view was among
            # the stale set, the survivor is a successor of ours that we
            # never installed (we lagged a previous merge flush, e.g. we
            # entered the HWG view just after it).  Adopt it, exactly as
            # if its installation message had reached us.
            local = self.svc.table.local(lwg)
            if (
                len(candidates) == 1
                and local is not None
                and local.is_member
                and local.hwg == hwg
                and local.view is not None
                and local.view.view_id in stale
                and local.view.view_id != candidates[0].view_id
                and self.svc.node in candidates[0].members
            ):
                self.svc.trace(
                    "lwg_view_adopted",
                    lwg=lwg,
                    hwg=hwg,
                    adopted=str(candidates[0].view_id),
                )
                self.svc.install_local_view(local, candidates[0], reason="adopt")
            return
        merged = merge_lwg_views(lwg, sorted(candidates, key=lambda v: v.view_id))
        self.svc.trace(
            "lwg_views_merged",
            lwg=lwg,
            hwg=hwg,
            merged=str(merged.view_id),
            parents=[str(p) for p in merged.parents],
            members=list(merged.members),
        )
        self.merges_completed += 1
        self.svc.table.dir_for(hwg).record_view(merged)
        local = self.svc.table.local(lwg)
        if (
            local is None
            or not local.is_member
            or local.hwg != hwg  # we switched away mid-round
            or self.svc.node not in merged.members
        ):
            return
        assert local.view is not None
        if local.view.view_id == merged.view_id:
            return
        if local.view.view_id not in merged.parents:
            # Our lineage was not part of this round's common knowledge.
            # With minting deferred during rounds this cannot happen in
            # steady state, but a round that straddled our own switch or
            # restriction may still race: skip rather than break the
            # delivered-set continuity; the next round includes us.
            self.svc.trace(
                "merge_skipped_foreign_lineage", lwg=lwg, merged=str(merged.view_id)
            )
            return
        self.svc.install_local_view(local, merged, reason="merge")


#: Identical-signature MULTIPLE-MAPPINGS callbacks the winning
#: coordinator tolerates before declaring the losing branch dead and
#: burying its record.  Callbacks are re-sent per server while the
#: conflict persists, so this spans several renotify periods — long
#: enough for a live loser to switch or re-register.
PERSISTENT_CONFLICT_ROUNDS = 6


class ReconciliationHandler:
    """Steps 1-2: act on MULTIPLE-MAPPINGS callbacks (Section 6.2)."""

    def __init__(self, service):
        self.svc = service
        self.callbacks_received = 0
        self.switches_initiated = 0
        self.views_disowned = 0
        self.branches_buried = 0
        #: lwg -> (loser signature, consecutive identical callbacks).
        self._persistent: Dict[LwgId, Tuple[frozenset, int]] = {}

    def on_multiple_mappings(self, message: MultipleMappings) -> None:
        self.callbacks_received += 1
        disowned = self._disown_defunct_views(message)
        local = self.svc.table.local(message.lwg)
        if local is None or not local.is_member or local.view is None:
            return
        if local.coordinator() != self.svc.node:
            return  # only the view coordinator reconciles
        if local.switch_epoch is not None:
            return  # already switching
        live = [
            r for r in message.records
            if not r.deleted and r.lwg_view not in disowned
        ]
        my_record = [r for r in live if r.lwg_view == local.view.view_id]
        if not my_record:
            return  # the callback is about views we already superseded
        winner = highest_gid({r.hwg for r in live})
        if winner is None or winner == local.hwg:
            # We are on the highest-gid HWG: keep the mapping (the other
            # views switch to us) — unless a loser never does.
            self._bury_unresponsive_losers(message.lwg, local, live)
            return
        self.svc.trace(
            "reconcile_switch",
            lwg=message.lwg,
            from_hwg=local.hwg,
            to_hwg=winner,
        )
        self.switches_initiated += 1
        self.svc.start_switch(local, winner, reason="reconciliation")

    def _bury_unresponsive_losers(
        self, lwg: LwgId, local: LocalLwg, live: List[MappingRecord]
    ) -> None:
        """Retire losing records whose branch never acts on its callbacks.

        Reconciliation normally ends with the *losing* coordinator
        switching its view onto the winning HWG.  If that coordinator
        crashed for good before ever learning of the conflict (the
        notifier targets it on every round, to silence), no switch will
        come, no succession authority applies — the view is not in our
        ancestor set, we never merged with it — and the conflict would
        stand forever.  After :data:`PERSISTENT_CONFLICT_ROUNDS`
        callbacks carrying the *identical* loser set, the winning
        coordinator declares the branch dead and buries each record
        with the weakest-possible tombstone (same version and writer,
        ``deleted`` flipped).  A mis-declared live branch loses only
        its discovery beacon, not its state: its coordinator's periodic
        mapping audit re-registers at a higher version, overriding the
        burial, and reconciliation resumes with both branches alive.
        """
        losers = [
            r for r in live
            if r.lwg_view != local.view.view_id and r.hwg != local.hwg
        ]
        if not losers:
            self._persistent.pop(lwg, None)
            return
        signature = frozenset((str(r.lwg_view), r.hwg) for r in losers)
        previous, count = self._persistent.get(lwg, (None, 0))
        count = count + 1 if signature == previous else 1
        if count < PERSISTENT_CONFLICT_ROUNDS:
            self._persistent[lwg] = (signature, count)
            return
        self._persistent.pop(lwg, None)
        self.svc.trace("reconcile_bury_dead_branch", lwg=lwg, buried=len(losers))
        for r in sorted(losers, key=lambda rec: (rec.lwg_view, rec.hwg)):
            self.branches_buried += 1
            self.svc.naming.unset(
                MappingRecord(
                    lwg=r.lwg,
                    lwg_view=r.lwg_view,
                    lwg_members=r.lwg_members,
                    hwg=r.hwg,
                    hwg_view=r.hwg_view,
                    version=r.version,
                    writer=r.writer,
                    deleted=True,
                )
            )

    def _disown_defunct_views(self, message: MultipleMappings) -> Set[ViewId]:
        """Tombstone records citing views this node is entitled to retire.

        Two authorities apply, per record:

        * **Minting** — only this node mints ``ViewId(self.node, *)``
          (durable view-seq makes those ids unique across crashes, and a
          hash-minted merged id always has its nominal coordinator as a
          member), so a live record citing one that is not our current
          view of the LWG is defunct — typically resurrected by a
          corrupted name-server store after every replica holding the
          superseding genealogy was lost.
        * **Succession** — as the live *coordinator* of a branch, any
          record citing a view in our ancestor set is superseded by our
          own registered mapping, whoever minted it.  This retires the
          record of a dead fork (e.g. a merged view whose nominal
          coordinator crashed for good) that no other authority can
          clean up.

        Returns the disowned view ids so the caller's switch logic can
        ignore them this round (the tombstones land asynchronously).
        """
        node = self.svc.node
        local = self.svc.table.local(message.lwg)
        member = local is not None and local.is_member and local.view is not None
        current = local.view.view_id if member else None
        disowned: Set[ViewId] = set()
        refreshed = False
        for record in message.records:
            if record.deleted or record.lwg_view == current:
                continue
            minted_here = record.lwg_view.coordinator == node
            superseded = (
                member
                and local.coordinator() == node
                and local.ancestors.is_stale(record.lwg_view)
            )
            if not minted_here and not superseded:
                continue
            if member and record.hwg == local.hwg:
                # The record cites a view we moved past but still points
                # at the HWG our live branch occupies — if newer records
                # were lost (corrupted replica), it is the branch's only
                # discovery beacon, and retiring it would strand the
                # branch in an unmergeable split.  The coordinator plants
                # a fresh beacon first; a mere member leaves the record
                # alone (its coordinator re-registers on the next HWG
                # view change).
                if local.coordinator() != node:
                    continue
                if not refreshed:
                    self.svc.register_mapping(local)
                    refreshed = True
            version = max(self.svc.naming.next_version(), record.version + 1)
            self.svc.naming.observe_version(version)
            self.svc.trace(
                "disown_defunct_view",
                lwg=message.lwg,
                view=str(record.lwg_view),
            )
            self.svc.naming.unset(
                MappingRecord(
                    lwg=record.lwg,
                    lwg_view=record.lwg_view,
                    lwg_members=record.lwg_members,
                    hwg=record.hwg,
                    hwg_view=record.hwg_view,
                    version=version,
                    writer=node,
                    deleted=True,
                )
            )
            self.views_disowned += 1
            disowned.add(record.lwg_view)
        return disowned
