"""The LWG join protocol (and the leave fast paths).

Joining a light-weight group (Section 3.1, partition-hardened per
Section 5.2):

1. read the naming service; if live mappings exist, target the one on
   the highest-gid HWG (consistent with the Section 6.2 reconciliation
   rule, so joiners racing a reconciliation pick the surviving side);
2. become a member of the target HWG (the heavy machinery — failure
   detection, flush, total order — all happens down there);
3. multicast an ``LwgJoinReq`` on the HWG; the LWG coordinator answers
   by installing a new LWG view that includes us;
4. if the mapping was stale: members holding a *forward pointer* redirect
   us to the HWG the LWG switched to; if nobody answers at all within
   the claim timeout, the mapping is dead and we (re)create the LWG here
   via ``ns.testset`` — losing that race simply restarts the loop with
   the winner's record.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..naming.records import HwgId, LwgId, MappingRecord
from ..vsync.membership import EndpointState
from ..vsync.view import View, ViewId
from .ids import highest_gid
from .mapping_table import LocalLwg, LwgState
from .messages import LwgJoinReq


class JoinDriver:
    """State machine driving one process's join of one LWG."""

    def __init__(self, service, local: LocalLwg):
        self.svc = service
        self.local = local
        self.lwg: LwgId = local.lwg
        self.target_hwg: Optional[HwgId] = None
        self.mode = "read"  # read | join | create
        self.done = False
        self._timer = None
        self._epoch = 0  # bumps on every retarget; stale timers check it
        self._acted_epoch = -1  # guards one action per (re)target
        self._last_signature: Optional[frozenset] = None
        self._futile_rounds = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.svc.trace("lwg_join_start", lwg=self.lwg)
        self._read_naming()

    def cancel(self) -> None:
        self.done = True
        self._cancel_timer()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self, delay: int, callback) -> None:
        self._cancel_timer()
        epoch = self._epoch

        def fire() -> None:
            if not self.done and epoch == self._epoch:
                callback()

        self._timer = self.svc.stack.set_timer(delay, fire)

    # ------------------------------------------------------------------
    # Step 1: naming lookup
    # ------------------------------------------------------------------
    def _read_naming(self) -> None:
        self.mode = "read"
        self._epoch += 1
        self.svc.naming.read(self.lwg, self._on_ns_records)

    def _on_ns_records(self, records: Sequence[MappingRecord]) -> None:
        if self.done:
            return
        live = [r for r in records if not r.deleted]
        signature = frozenset((r.lwg_view, r.hwg, r.version, r.writer) for r in live)
        if live and signature == self._last_signature:
            self._futile_rounds += 1
        else:
            self._futile_rounds = 0
        self._last_signature = signature
        if live and self._futile_rounds >= 2:
            self._bury_dead_mappings(live)
            return
        if live:
            # Prefer the mapping on the highest-gid HWG (Section 6.2 rule).
            best_hwg = highest_gid({r.hwg for r in live})
            self._target(best_hwg, mode="join")
        else:
            chosen = self.svc.mapping_policy.choose(self.lwg, self.svc)
            self._target(chosen or self.svc.mint_hwg_id(), mode="create")

    def _bury_dead_mappings(self, live: Sequence[MappingRecord]) -> None:
        """Nobody behind these records answered across two full
        join->claim cycles: the recorded views are dead — every member
        crashed without the graceful leave that would have tombstoned
        the mapping — or partitioned away from us.  Bury each record
        with the *weakest possible* tombstone: same version and writer
        with ``deleted`` flipped, which outranks only that exact twin
        in the LWW order.  Our claim can then go through, while any
        later write by the true coordinator (always a higher version)
        immediately overrides the burial and normal reconciliation
        merges the two lineages.
        """
        self.svc.trace("lwg_join_bury_dead", lwg=self.lwg, buried=len(live))
        for r in sorted(live, key=lambda rec: (rec.lwg_view, rec.hwg)):
            self.svc.naming.unset(
                MappingRecord(
                    lwg=r.lwg,
                    lwg_view=r.lwg_view,
                    lwg_members=r.lwg_members,
                    hwg=r.hwg,
                    hwg_view=r.hwg_view,
                    version=r.version,
                    writer=r.writer,
                    deleted=True,
                )
            )
        self._futile_rounds = 0
        self._last_signature = None
        self._epoch += 1
        self._arm(self.svc.config.join_claim_us, self._read_naming)

    # ------------------------------------------------------------------
    # Step 2: get onto the HWG
    # ------------------------------------------------------------------
    def _target(self, hwg: HwgId, mode: str) -> None:
        self._epoch += 1
        self.mode = mode
        self.target_hwg = hwg
        self.local.hwg = hwg
        endpoint = self.svc.ensure_hwg(hwg)
        if endpoint.state is EndpointState.MEMBER and endpoint.current_view is not None:
            self.on_hwg_ready(hwg)
            return
        # The service calls on_hwg_ready when the HWG view containing us
        # installs.  The safety timer below covers every wedge this can
        # hit in a churning system (a stale mapping pointing at an HWG
        # being drained, a record that switched away mid-join, ...): if
        # nothing happened after the stall window, restart from the
        # naming lookup with fresh information.
        stall_window = 2 * self.svc.config.join_claim_us
        self._arm(stall_window, self._stalled)

    def _stalled(self) -> None:
        if self.done:
            return
        self.svc.trace("lwg_join_stalled_retry", lwg=self.lwg, target=self.target_hwg)
        self._read_naming()

    def on_hwg_ready(self, hwg: HwgId) -> None:
        """We are now a member of ``hwg``: run the LWG-level step."""
        if self.done or hwg != self.target_hwg:
            return
        if self._acted_epoch == self._epoch:
            return  # already acted for this target; timers drive retries
        self._acted_epoch = self._epoch
        if self.mode == "join":
            self._send_join_request()
        elif self.mode == "create":
            self._claim()

    # ------------------------------------------------------------------
    # Step 3: ask the LWG coordinator to admit us
    # ------------------------------------------------------------------
    def _send_join_request(self) -> None:
        assert self.target_hwg is not None
        request = LwgJoinReq(lwg=self.lwg, joiner=self.svc.node)
        self.svc.hwg_send(self.target_hwg, request)
        # If nothing materialises, the mapping may be stale: claim the LWG.
        self._arm(self.svc.config.join_claim_us, self._claim_or_retry)

    def _claim_or_retry(self) -> None:
        directory = self.svc.table.dir_for(self.target_hwg)
        recorded = directory.views.get(self.lwg)
        if recorded is not None and self._has_admitter(recorded):
            # The LWG is alive here; the coordinator just hasn't admitted
            # us yet (e.g. mid-switch).  Ask again.
            self._send_join_request()
        elif recorded is not None:
            # The directory still records a view for the LWG, but none of
            # its members — other than ourselves — is in the HWG anymore:
            # nobody here can answer the join request, so resending loops
            # forever.  (Reachable when every other member crash-recovers
            # with a clean slate while we were forced out: the stale view
            # lists *us*, so member-pruning keeps it alive.)  Restart from
            # naming; repeated futile rounds bury the dead record and let
            # our claim through.
            self.svc.trace(
                "lwg_join_dead_directory", lwg=self.lwg, hwg=self.target_hwg
            )
            self._read_naming()
        else:
            self._claim()

    def _has_admitter(self, recorded: View) -> bool:
        """True while the recorded LWG view keeps a member other than us
        inside the target HWG's current view — someone who could still
        admit us.  Unknown HWG state counts as "keep asking"."""
        endpoint = self.svc.hwg_endpoint(self.target_hwg)
        if endpoint is None or endpoint.current_view is None:
            return True
        here = set(endpoint.current_view.members)
        return any(m != self.svc.node and m in here for m in recorded.members)

    # ------------------------------------------------------------------
    # Step 4: create (or re-create) the LWG on the target HWG
    # ------------------------------------------------------------------
    def _claim(self) -> None:
        assert self.target_hwg is not None
        endpoint = self.svc.hwg_endpoint(self.target_hwg)
        if endpoint is None or endpoint.current_view is None:
            self._acted_epoch = -1  # let the next HWG view re-fire us
            return
        self.mode = "create"
        view = View(
            group=self.lwg,
            view_id=ViewId(self.svc.node, self.svc.stack.next_view_seq()),
            members=(self.svc.node,),
            parents=(),
        )
        record = MappingRecord(
            lwg=self.lwg,
            lwg_view=view.view_id,
            lwg_members=view.members,
            hwg=self.target_hwg,
            hwg_view=endpoint.current_view.view_id,
            version=self.svc.naming.next_version(),
            writer=self.svc.node,
        )
        claimed_epoch = self._epoch
        self.svc.naming.testset(
            record,
            parents=(),
            on_reply=lambda records: self._on_testset_reply(view, claimed_epoch, records),
        )

    def _on_testset_reply(
        self, proposed: View, epoch: int, records: Tuple[MappingRecord, ...]
    ) -> None:
        if self.done or epoch != self._epoch:
            return
        won = any(r.lwg_view == proposed.view_id for r in records)
        if won:
            self.svc.adopt_created_view(self.local, proposed, self.target_hwg)
            return
        # Lost the creation race: follow whatever mapping won.
        self._on_ns_records(records)

    # ------------------------------------------------------------------
    # Events surfaced by the service
    # ------------------------------------------------------------------
    def on_redirect(self, to_hwg: HwgId) -> None:
        """A forward pointer told us the LWG switched to ``to_hwg``."""
        if self.done:
            return
        self.svc.trace("lwg_join_redirect", lwg=self.lwg, to=to_hwg)
        self._target(to_hwg, mode="join")

    def complete(self) -> None:
        """The LWG view including us was installed."""
        self.done = True
        self._cancel_timer()
        self.svc.trace("lwg_join_done", lwg=self.lwg, hwg=self.target_hwg)
