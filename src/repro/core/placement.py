"""Global LWG→HWG placement as balanced, overlap-aware partitioning.

The paper's Figure-1 rules (share/interference/shrink) are greedy and
strictly *local*: each evaluates one LWG or one HWG pair against the
current configuration.  At high group counts they settle into mappings
with avoidable HWGs, skewed per-HWG load and oversized multicast
fan-out — an LWG that rides an HWG at 40% coverage is inside the
hysteresis band (neither minority nor close-enough elsewhere), so no
rule ever moves it, yet every one of its messages is delivered to the
60% of the HWG that doesn't care.

This module instead treats the mapping as an explicit optimization
problem in the spirit of balanced-partitioning assignment: place every
LWG we coordinate into a *placement group* (an existing HWG or a fresh
one) so that the global cost

    cost(P) = hwg_cost   · |chargeable groups|
            + fanout_w   · Σ_g load(g) · |union(g)|
            + skew_w     · max_g load(g)

is minimized subject to the paper's §3.2 overlap constraints on every
group's membership union ``U``:

* retention floor (``k_m``): no cargo member-set ``m`` may be a
  minority of ``U`` — ``|m| · k_m > |U|`` (the interference rule would
  evict it);
* admission ceiling (``k_c``): every cargo set *moved* into the group
  must be close enough — ``(|U| − |m|) · k_c ≤ |U|`` (the paper admits
  an LWG onto an HWG only above this coverage).

``load(g)`` uses ``|members|`` as the traffic-weight proxy (every
member is a potential sender), ``union(g)`` is the projected HWG
membership (cargo unions — residual members drain via the shrink
rule), and a group is *chargeable* when our movable cargo alone keeps
it alive (fresh groups, or anchored HWGs with no foreign cargo).

Algorithm: greedy seeding by membership class (LWGs with identical
member sets are interchangeable, so whole classes seed together,
largest weight first), then bounded local-search refinement — per-LWG
move passes and a budgeted swap pass — accepting strictly improving
steps only.  Every container is iterated in sorted order and every tie
is broken by an explicit deterministic key, so the result is a pure
function of the input, independent of ``PYTHONHASHSEED``.

The surrounding machinery is unchanged: the optimizer emits the same
``SwitchAction`` vocabulary as the Figure-1 rules (rate-limited per
evaluation), the shrink rule still produces ``LeaveHwgAction``s, and a
hysteresis gate (plan must beat the current assignment by a minimum
relative gain) makes repeated evaluation converge to a fixed point
instead of chasing marginal rearrangements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..naming.records import HwgId, LwgId
from ..vsync.view import ProcessId
from .config import LwgConfig
from .policies import PolicySnapshot, SwitchAction

Members = FrozenSet[ProcessId]

#: Key prefix for planned-but-not-yet-minted placement groups.  Never
#: collides with real HWG ids (``hwg:...``).
_FRESH_PREFIX = "fresh:"

_EPSILON = 1e-9


@dataclass(frozen=True)
class PlacementCost:
    """Weights of the placement objective (see module docstring)."""

    #: Cost of keeping one HWG alive for our cargo alone (membership
    #: beacons, failure detection, view machinery).
    hwg_cost: float = 64.0
    #: Cost per (sender-weight × receiver) of multicast fan-out.
    fanout_weight: float = 1.0
    #: Penalty on the most-loaded group (balance pressure).
    skew_weight: float = 8.0


@dataclass(frozen=True)
class PlacementView:
    """The optimizer's pure input: who we may move, and where.

    Attributes:
        lwgs: (lwg, members) for every LWG we coordinate and may move,
            sorted by LWG id.
        current: lwg -> the anchor it currently rides (None when its
            HWG is not among the known anchors).
        anchors: sorted candidate target HWGs (the ones we belong to).
        pinned: anchor -> member sets of cargo we must not move (LWGs
            coordinated elsewhere, or mid-switch) — they stay in the
            group's union whatever we decide.
    """

    lwgs: Tuple[Tuple[LwgId, Members], ...]
    current: Dict[LwgId, Optional[HwgId]]
    anchors: Tuple[HwgId, ...]
    pinned: Dict[HwgId, Tuple[Members, ...]]

    @staticmethod
    def from_snapshot(snap: PolicySnapshot) -> "PlacementView":
        movable: List[Tuple[LwgId, Members]] = []
        current: Dict[LwgId, Optional[HwgId]] = {}
        for lwg in sorted(snap.coordinated_lwgs):
            if lwg in snap.busy_lwgs:
                continue
            members, hwg = snap.coordinated_lwgs[lwg]
            if not members:
                continue
            movable.append((lwg, members))
            current[lwg] = hwg if hwg in snap.hwg_members else None
        movable_ids = set(current)
        anchors = tuple(sorted(snap.hwg_members))
        pinned: Dict[HwgId, Tuple[Members, ...]] = {}
        for hwg in anchors:
            pinned[hwg] = tuple(
                m
                for lwg, m in snap.hwg_pinned.get(hwg, ())
                if lwg not in movable_ids and m
            )
        return PlacementView(tuple(movable), current, anchors, pinned)


@dataclass(frozen=True)
class PlacementPlan:
    """The optimizer's output: a target assignment and its cost."""

    #: lwg -> target group key (an anchor HWG id, or a ``fresh:NNN`` key).
    assignment: Dict[LwgId, str]
    #: fresh group key -> its lwgs, sorted (all share ONE minted HWG).
    fresh_groups: Dict[str, Tuple[LwgId, ...]]
    cost: float
    current_cost: float

    @property
    def gain(self) -> float:
        return self.current_cost - self.cost

    def moves(self, view: PlacementView) -> List[Tuple[LwgId, str]]:
        """(lwg, target key) for every LWG the plan relocates, sorted."""
        out = []
        for lwg, _ in view.lwgs:
            target = self.assignment[lwg]
            if target != view.current.get(lwg):
                out.append((lwg, target))
        return out


def is_fresh_key(key: str) -> bool:
    return key.startswith(_FRESH_PREFIX)


# ----------------------------------------------------------------------
# Working state
# ----------------------------------------------------------------------
class _Slot:
    """Mutable per-group accumulator used during the search.

    Tracks the movable cargo (per-process reference counts so unions
    update incrementally), the immovable (pinned) cargo, and the
    smallest cargo sizes the feasibility constraints key on.
    """

    __slots__ = (
        "key",
        "anchor",
        "pinned_sets",
        "pinned_union",
        "pinned_load",
        "pinned_min",
        "proc_count",
        "extra",
        "class_count",
        "changed_count",
        "load",
        "lwg_count",
        "_min_size",
        "_min_changed",
    )

    def __init__(self, key: str, anchor: Optional[HwgId], pinned_sets: Sequence[Members]):
        self.key = key
        self.anchor = anchor
        self.pinned_sets: Tuple[Members, ...] = tuple(pinned_sets)
        self.pinned_union: Members = (
            frozenset().union(*self.pinned_sets) if self.pinned_sets else frozenset()
        )
        self.pinned_load = float(sum(len(m) for m in self.pinned_sets))
        self.pinned_min: Optional[int] = (
            min(len(m) for m in self.pinned_sets) if self.pinned_sets else None
        )
        #: Movable-cargo process reference counts.
        self.proc_count: Dict[ProcessId, int] = {}
        #: Movable processes outside the pinned union (the union growth).
        self.extra: Set[ProcessId] = set()
        self.class_count: Dict[Members, int] = {}
        self.changed_count: Dict[Members, int] = {}
        self.load = 0.0
        self.lwg_count = 0
        self._min_size: Optional[int] = None
        self._min_changed: Optional[int] = None

    # -- aggregates ----------------------------------------------------
    @property
    def union_size(self) -> int:
        return len(self.pinned_union) + len(self.extra)

    @property
    def total_load(self) -> float:
        return self.pinned_load + self.load

    @property
    def fanout(self) -> float:
        return self.total_load * self.union_size

    @property
    def chargeable(self) -> bool:
        return self.lwg_count > 0 and not self.pinned_sets

    def min_size(self) -> Optional[int]:
        """Smallest cargo member-set size (pinned + movable)."""
        if self._min_size is None:
            sizes = [len(m) for m in self.class_count]
            if self.pinned_min is not None:
                sizes.append(self.pinned_min)
            self._min_size = min(sizes) if sizes else -1
        return None if self._min_size < 0 else self._min_size

    def min_changed(self) -> Optional[int]:
        """Smallest *moved-in* movable member-set size."""
        if self._min_changed is None:
            sizes = [len(m) for m in self.changed_count]
            self._min_changed = min(sizes) if sizes else -1
        return None if self._min_changed < 0 else self._min_changed

    # -- mutation ------------------------------------------------------
    def add(self, m: Members, weight: float, changed: bool) -> None:
        for p in m:
            n = self.proc_count.get(p, 0)
            self.proc_count[p] = n + 1
            if n == 0 and p not in self.pinned_union:
                self.extra.add(p)
        self.class_count[m] = self.class_count.get(m, 0) + 1
        if changed:
            self.changed_count[m] = self.changed_count.get(m, 0) + 1
        self.load += weight
        self.lwg_count += 1
        self._min_size = None
        self._min_changed = None

    def remove(self, m: Members, weight: float, changed: bool) -> None:
        for p in m:
            n = self.proc_count[p] - 1
            if n:
                self.proc_count[p] = n
            else:
                del self.proc_count[p]
                self.extra.discard(p)
        n = self.class_count[m] - 1
        if n:
            self.class_count[m] = n
        else:
            del self.class_count[m]
        if changed:
            n = self.changed_count[m] - 1
            if n:
                self.changed_count[m] = n
            else:
                del self.changed_count[m]
        self.load -= weight
        self.lwg_count -= 1
        self._min_size = None
        self._min_changed = None

    # -- candidate evaluation ------------------------------------------
    def union_growth(self, m: Members) -> int:
        """How many new processes adding ``m`` brings into the union."""
        return sum(
            1 for p in m if p not in self.pinned_union and p not in self.extra
        )

    def union_shrink(self, m: Members) -> int:
        """How many processes leave the union when ``m``'s last copy goes."""
        if self.class_count.get(m, 0) > 1:
            return 0  # an identical set keeps every process referenced
        return sum(
            1
            for p in m
            if self.proc_count.get(p, 0) == 1 and p not in self.pinned_union
        )

    def feasible_after_add(self, m: Members, changed: bool, k_m: int, k_c: int) -> bool:
        """Would the group still satisfy the k_m/k_c band with ``m`` added?"""
        u = self.union_size + self.union_growth(m)
        existing_min = self.min_size()
        min_all = len(m) if existing_min is None else min(existing_min, len(m))
        if min_all * k_m <= u:
            return False  # some cargo becomes a minority of the union
        mc = self.min_changed()
        if changed:
            mc = len(m) if mc is None else min(mc, len(m))
        if mc is not None and (u - mc) * k_c > u:
            return False  # some moved-in cargo is no longer close enough
        return True


class _MaxLoadTracker:
    """O(1) "max load if these two slots changed" queries.

    Keeps the top three (load, key) pairs; at most two slots change per
    candidate evaluation, so one of the three is always unaffected
    (falling back to a full scan only when fewer than three slots
    exist).
    """

    def __init__(self) -> None:
        self.top: List[Tuple[float, str]] = []

    def rebuild(self, slots: Dict[str, _Slot]) -> None:
        loads = sorted(
            ((s.total_load, k) for k, s in slots.items() if s.total_load > 0),
            reverse=True,
        )
        self.top = loads[:3]

    def current_max(self) -> float:
        return self.top[0][0] if self.top else 0.0

    def max_with(
        self, slots: Dict[str, _Slot], changes: Dict[str, float]
    ) -> float:
        """Max load when slot ``k`` has load ``changes[k]`` instead."""
        best = 0.0
        seen = 0
        for load, key in self.top:
            if key in changes:
                continue
            best = max(best, load)
            seen += 1
            break  # highest unaffected entry bounds the rest
        if seen == 0 and len(self.top) == 3:
            # All three tracked slots changed (impossible for two-slot
            # updates, defensive for direct calls) — full scan.
            for key, slot in slots.items():
                if key not in changes:
                    best = max(best, slot.total_load)
        for load in changes.values():
            best = max(best, load)
        return best


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------
class PlacementOptimizer:
    """Deterministic global placement search over a :class:`PlacementView`."""

    def __init__(
        self,
        config: Optional[LwgConfig] = None,
        cost: Optional[PlacementCost] = None,
    ):
        self.config = config or LwgConfig()
        self.cost = cost or PlacementCost()

    # -- public --------------------------------------------------------
    def plan(self, view: PlacementView) -> PlacementPlan:
        """Compute the target assignment for ``view`` (pure function)."""
        weights = {lwg: float(len(m)) for lwg, m in view.lwgs}
        slots, assign = self._seed(view, weights)
        self._refine(view, weights, slots, assign)
        plan_cost = self._total_cost(slots)
        current_cost = self._current_cost(view, weights)
        assignment = dict(sorted(assign.items()))
        fresh: Dict[str, List[LwgId]] = {}
        for lwg, key in assignment.items():
            if is_fresh_key(key):
                fresh.setdefault(key, []).append(lwg)
        fresh_groups = {k: tuple(sorted(v)) for k, v in sorted(fresh.items())}
        return PlacementPlan(
            assignment=assignment,
            fresh_groups=fresh_groups,
            cost=plan_cost,
            current_cost=current_cost,
        )

    # -- cost helpers --------------------------------------------------
    def _total_cost(self, slots: Dict[str, _Slot]) -> float:
        c = self.cost
        chargeable = sum(1 for s in slots.values() if s.chargeable)
        fanout = sum(s.fanout for s in slots.values())
        max_load = max((s.total_load for s in slots.values()), default=0.0)
        return c.hwg_cost * chargeable + c.fanout_weight * fanout + c.skew_weight * max_load

    def _current_cost(self, view: PlacementView, weights: Dict[LwgId, float]) -> float:
        """Cost of the *current* assignment under the same projection."""
        slots = self._base_slots(view)
        for lwg, m in view.lwgs:
            cur = view.current.get(lwg)
            if cur is None:
                # Unknown anchor: charge it as its own fresh group.
                key = _FRESH_PREFIX + "cur:" + lwg
                slots[key] = _Slot(key, None, ())
                slots[key].add(m, weights[lwg], changed=False)
            else:
                slots[cur].add(m, weights[lwg], changed=False)
        return self._total_cost(slots)

    def _base_slots(self, view: PlacementView) -> Dict[str, _Slot]:
        return {
            anchor: _Slot(anchor, anchor, view.pinned.get(anchor, ()))
            for anchor in view.anchors
        }

    # -- seeding -------------------------------------------------------
    def _seed(
        self, view: PlacementView, weights: Dict[LwgId, float]
    ) -> Tuple[Dict[str, _Slot], Dict[LwgId, str]]:
        """Greedy class-by-class seeding, heaviest classes first."""
        k_m, k_c = self.config.k_m, self.config.k_c
        c = self.cost
        slots = self._base_slots(view)
        assign: Dict[LwgId, str] = {}
        tracker = _MaxLoadTracker()
        tracker.rebuild(slots)
        fresh_counter = 0

        # Membership classes: identical member sets are interchangeable.
        classes: Dict[Members, List[LwgId]] = {}
        for lwg, m in view.lwgs:
            classes.setdefault(m, []).append(lwg)
        ordered = sorted(
            classes.items(),
            key=lambda item: (
                -sum(weights[lwg] for lwg in item[1]),
                tuple(sorted(item[0])),
            ),
        )

        for members, lwgs in ordered:
            class_weight = sum(weights[lwg] for lwg in lwgs)
            count = len(lwgs)
            stickiness: Dict[str, float] = {}
            for lwg in lwgs:
                cur = view.current.get(lwg)
                if cur is not None:
                    stickiness[cur] = stickiness.get(cur, 0.0) + weights[lwg]
            best: Optional[Tuple[Tuple[float, float, int, str], str]] = None
            for key in sorted(slots):
                slot = slots[key]
                # Feasibility must hold for the *worst* member of the
                # class placed here: if any lwg of the class is changed,
                # check with changed=True (the stricter case).
                any_changed = slot.anchor is None or any(
                    view.current.get(lwg) != slot.anchor for lwg in lwgs
                )
                if not slot.feasible_after_add(members, any_changed, k_m, k_c):
                    continue
                dcost = self._add_delta(slot, slots, tracker, members, class_weight, count, c)
                sel = (dcost, -stickiness.get(key, 0.0), 0, key)
                if best is None or sel < best[0]:
                    best = (sel, key)
            # The fresh-group candidate (always feasible for one class).
            fresh_key = f"{_FRESH_PREFIX}{fresh_counter:03d}"
            dcost_fresh = (
                c.hwg_cost
                + c.fanout_weight * class_weight * len(members)
                + c.skew_weight
                * (
                    tracker.max_with(slots, {fresh_key: class_weight})
                    - tracker.current_max()
                )
            )
            sel_fresh = (dcost_fresh, 0.0, 1, fresh_key)
            if best is None or sel_fresh < best[0]:
                slot = _Slot(fresh_key, None, ())
                slots[fresh_key] = slot
                fresh_counter += 1
                best = (sel_fresh, fresh_key)
            chosen = slots[best[1]]
            for lwg in sorted(lwgs):
                changed = chosen.anchor is None or view.current.get(lwg) != chosen.anchor
                chosen.add(members, weights[lwg], changed)
                assign[lwg] = chosen.key
            tracker.rebuild(slots)
        return slots, assign

    def _add_delta(
        self,
        slot: _Slot,
        slots: Dict[str, _Slot],
        tracker: _MaxLoadTracker,
        members: Members,
        weight: float,
        count: int,
        c: PlacementCost,
    ) -> float:
        """Total-cost delta of adding ``count`` LWGs of one class to ``slot``."""
        u_new = slot.union_size + slot.union_growth(members)
        dfanout = (slot.total_load + weight) * u_new - slot.fanout
        dcharge = c.hwg_cost if (slot.lwg_count == 0 and not slot.pinned_sets) else 0.0
        new_max = tracker.max_with(slots, {slot.key: slot.total_load + weight})
        dskew = c.skew_weight * (new_max - tracker.current_max())
        return dcharge + c.fanout_weight * dfanout + dskew

    # -- refinement ----------------------------------------------------
    def _refine(
        self,
        view: PlacementView,
        weights: Dict[LwgId, float],
        slots: Dict[str, _Slot],
        assign: Dict[LwgId, str],
    ) -> None:
        for _ in range(max(0, self.config.placement_max_passes)):
            moved = self._move_pass(view, weights, slots, assign)
            swapped = self._swap_pass(view, weights, slots, assign)
            if not moved and not swapped:
                break

    def _is_changed(self, view: PlacementView, lwg: LwgId, slot: _Slot) -> bool:
        return slot.anchor is None or view.current.get(lwg) != slot.anchor

    def _move_pass(
        self,
        view: PlacementView,
        weights: Dict[LwgId, float],
        slots: Dict[str, _Slot],
        assign: Dict[LwgId, str],
    ) -> bool:
        """One strictly-improving move per LWG, in LWG-id order."""
        k_m, k_c = self.config.k_m, self.config.k_c
        c = self.cost
        tracker = _MaxLoadTracker()
        tracker.rebuild(slots)
        any_moved = False
        for lwg, m in view.lwgs:
            src = slots[assign[lwg]]
            w = weights[lwg]
            src_changed = self._is_changed(view, lwg, src)
            # Source-side delta (same for every candidate target).
            u_src_new = src.union_size - src.union_shrink(m)
            src_load_new = src.total_load - w
            dfan_src = src_load_new * u_src_new - src.fanout
            dcharge_src = -c.hwg_cost if (src.lwg_count == 1 and not src.pinned_sets) else 0.0
            best: Optional[Tuple[Tuple[float, int, str], str]] = None
            for key in sorted(slots):
                if key == src.key:
                    continue
                dst = slots[key]
                if dst.lwg_count == 0 and dst.anchor is None:
                    continue  # dead fresh slot: covered by the fresh probe
                dst_changed = self._is_changed(view, lwg, dst)
                if not dst.feasible_after_add(m, dst_changed, k_m, k_c):
                    continue
                u_dst_new = dst.union_size + dst.union_growth(m)
                dfan_dst = (dst.total_load + w) * u_dst_new - dst.fanout
                dcharge_dst = (
                    c.hwg_cost if (dst.lwg_count == 0 and not dst.pinned_sets) else 0.0
                )
                new_max = tracker.max_with(
                    slots, {src.key: src_load_new, dst.key: dst.total_load + w}
                )
                dcost = (
                    dcharge_src
                    + dcharge_dst
                    + c.fanout_weight * (dfan_src + dfan_dst)
                    + c.skew_weight * (new_max - tracker.current_max())
                )
                sel = (dcost, 0, key)
                if best is None or sel < best[0]:
                    best = (sel, key)
            # Fresh-group probe: isolate this LWG (skip if already alone
            # in a chargeable group — that IS the fresh outcome).
            if not (src.lwg_count == 1 and not src.pinned_sets):
                dcost_fresh = (
                    dcharge_src
                    + c.hwg_cost
                    + c.fanout_weight * (dfan_src + w * len(m))
                    + c.skew_weight
                    * (
                        tracker.max_with(slots, {src.key: src_load_new, "?fresh": w})
                        - tracker.current_max()
                    )
                )
                sel = (dcost_fresh, 1, "?fresh")
                if best is None or sel < best[0]:
                    best = (sel, "?fresh")
            if best is None or best[0][0] >= -_EPSILON:
                continue
            target_key = best[1]
            if target_key == "?fresh":
                target_key = self._mint_fresh(slots)
            dst = slots[target_key]
            src.remove(m, w, src_changed)
            dst.add(m, w, self._is_changed(view, lwg, dst))
            assign[lwg] = target_key
            tracker.rebuild(slots)
            any_moved = True
        return any_moved

    def _swap_pass(
        self,
        view: PlacementView,
        weights: Dict[LwgId, float],
        slots: Dict[str, _Slot],
        assign: Dict[LwgId, str],
    ) -> bool:
        """Budgeted pairwise exchange between distinct groups.

        Move passes get stuck when two LWGs must trade places (each move
        alone violates feasibility or raises cost).  One representative
        per (membership class, slot) suffices — identical sets in the
        same slot are interchangeable — and evaluation stops after
        ``placement_swap_budget`` pairs, scanning representatives from
        the most-loaded groups first so the budget goes where the skew
        is.
        """
        budget = self.config.placement_swap_budget
        if budget <= 0:
            return False
        reps: Dict[Tuple[str, Members], LwgId] = {}
        for lwg, m in view.lwgs:
            key = (assign[lwg], m)
            if key not in reps or lwg < reps[key]:
                reps[key] = lwg
        ordered = sorted(
            reps.items(),
            key=lambda item: (
                -slots[item[0][0]].total_load,
                item[0][0],
                item[1],
            ),
        )
        rep_list = [(lwg, skey, m) for (skey, m), lwg in ordered]
        any_swapped = False
        evaluated = 0
        for i in range(len(rep_list)):
            if evaluated >= budget:
                break
            lwg_a, key_a, m_a = rep_list[i]
            if assign[lwg_a] != key_a:
                continue  # displaced by an earlier accepted swap
            for j in range(i + 1, len(rep_list)):
                if evaluated >= budget:
                    break
                lwg_b, key_b, m_b = rep_list[j]
                if key_b == key_a or assign[lwg_b] != key_b or m_a == m_b:
                    continue
                evaluated += 1
                if self._try_swap(view, weights, slots, assign, lwg_a, m_a, lwg_b, m_b):
                    any_swapped = True
                    break  # lwg_a moved; advance to the next representative
        return any_swapped

    def _try_swap(
        self,
        view: PlacementView,
        weights: Dict[LwgId, float],
        slots: Dict[str, _Slot],
        assign: Dict[LwgId, str],
        lwg_a: LwgId,
        m_a: Members,
        lwg_b: LwgId,
        m_b: Members,
    ) -> bool:
        """Exchange two LWGs' groups if strictly improving and feasible."""
        k_m, k_c = self.config.k_m, self.config.k_c
        slot_a, slot_b = slots[assign[lwg_a]], slots[assign[lwg_b]]
        w_a, w_b = weights[lwg_a], weights[lwg_b]
        before = self._total_cost(slots)
        ch_a_src = self._is_changed(view, lwg_a, slot_a)
        ch_b_src = self._is_changed(view, lwg_b, slot_b)
        slot_a.remove(m_a, w_a, ch_a_src)
        slot_b.remove(m_b, w_b, ch_b_src)
        ok = slot_b.feasible_after_add(
            m_a, self._is_changed(view, lwg_a, slot_b), k_m, k_c
        )
        if ok:
            slot_b.add(m_a, w_a, self._is_changed(view, lwg_a, slot_b))
            ok = slot_a.feasible_after_add(
                m_b, self._is_changed(view, lwg_b, slot_a), k_m, k_c
            )
            if not ok:
                slot_b.remove(m_a, w_a, self._is_changed(view, lwg_a, slot_b))
        if not ok:
            slot_a.add(m_a, w_a, ch_a_src)
            slot_b.add(m_b, w_b, ch_b_src)
            return False
        slot_a.add(m_b, w_b, self._is_changed(view, lwg_b, slot_a))
        after = self._total_cost(slots)
        if after < before - _EPSILON:
            assign[lwg_a] = slot_b.key
            assign[lwg_b] = slot_a.key
            return True
        # Revert.
        slot_a.remove(m_b, w_b, self._is_changed(view, lwg_b, slot_a))
        slot_b.remove(m_a, w_a, self._is_changed(view, lwg_a, slot_b))
        slot_a.add(m_a, w_a, ch_a_src)
        slot_b.add(m_b, w_b, ch_b_src)
        return False

    @staticmethod
    def _mint_fresh(slots: Dict[str, _Slot]) -> str:
        n = sum(1 for k in slots if is_fresh_key(k))
        key = f"{_FRESH_PREFIX}{n:03d}"
        while key in slots:  # seeded fresh keys may have left gaps
            n += 1
            key = f"{_FRESH_PREFIX}{n:03d}"
        slots[key] = _Slot(key, None, ())
        return key


# ----------------------------------------------------------------------
# The pluggable policy (SwitchAction emission)
# ----------------------------------------------------------------------
class OptimizerPlacementPolicy:
    """Adapts :class:`PlacementOptimizer` to the policy-engine contract.

    Emits the same ``SwitchAction`` vocabulary as the Figure-1 rules,
    guarded by hysteresis (the plan must beat the current assignment by
    ``placement_hysteresis`` of its cost, with an absolute floor of
    ``placement_min_gain``) and rate-limited to
    ``placement_max_switches`` switches per evaluation, so repeated
    evaluation descends monotonically to a fixed point.
    """

    def __init__(
        self,
        config: Optional[LwgConfig] = None,
        cost: Optional[PlacementCost] = None,
    ):
        self.config = config or LwgConfig()
        self.optimizer = PlacementOptimizer(self.config, cost)

    def evaluate(
        self,
        snap: PolicySnapshot,
        mint: Optional[Callable[[], HwgId]] = None,
    ) -> List[SwitchAction]:
        view = PlacementView.from_snapshot(snap)
        if not view.lwgs:
            return []
        plan = self.optimizer.plan(view)
        moves = plan.moves(view)
        if not moves:
            return []
        threshold = max(
            self.config.placement_min_gain,
            self.config.placement_hysteresis * plan.current_cost,
        )
        if plan.gain < threshold:
            return []
        actions: List[SwitchAction] = []
        minted: Dict[str, Optional[HwgId]] = {}
        for lwg, target in moves:
            if len(actions) >= self.config.placement_max_switches:
                break
            if is_fresh_key(target):
                if target not in minted:
                    minted[target] = mint() if mint is not None else None
                to_hwg = minted[target]
            else:
                to_hwg = target
            # Never re-switch onto the HWG the LWG already rides (the
            # anchor was merely unknown to the optimizer's view).
            _, underlying = snap.coordinated_lwgs[lwg]
            if to_hwg == underlying:
                continue
            actions.append(SwitchAction(lwg, to_hwg, reason="placement"))
        return actions
