"""LWG-layer protocol messages.

Almost all LWG traffic rides *inside* heavy-weight group multicasts
(payloads of ``HwgEndpoint.send``) and therefore inherits the HWG's
total order and flush guarantees — this reuse is the entire point of the
light-weight group design.  Every view-sensitive message is tagged with
the LWG view identifier it was sent in and is "only delivered to members
of that view" (Section 5.1), which is what decouples LWG merges from HWG
merges.

The only unicast message is ``RedirectLwg`` (the forward-pointer reply
to a joiner using an outdated mapping, Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..naming.records import HwgId, LwgId
from ..vsync.view import ProcessId, View, ViewId


#: Wire overhead of the LWG encapsulation header: the lwg identifier
#: plus a view identifier — small by design, since every user message
#: pays it (Section 3.1's "minimal overhead").
LWG_HEADER_BYTES = 28

#: Per-entry overhead inside an :class:`LwgBatch`: a length prefix plus
#: compact lwg/view/sender references.  Much smaller than a full
#: ``LWG_HEADER_BYTES + HEADER_BYTES`` envelope per message — that
#: difference is the batching win.
BATCH_ENTRY_HEADER_BYTES = 12

#: ``lwg`` label of a batch whose entries span multiple LWGs.  Per-HWG
#: buffers coalesce co-mapped groups, so a single label cannot name the
#: contents; accounting is always per entry (:meth:`LwgBatch.lwg_counts`).
MIXED_BATCH: LwgId = "lwg:<mixed>"


@dataclass(frozen=True)
class LwgMessage:
    """Base class for messages multicast on an HWG by the LWG layer."""

    lwg: LwgId

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + 32


@dataclass(frozen=True)
class LwgData(LwgMessage):
    """User payload: ``<DATA, lwg_id, view, data>`` (Figure 5, line 103)."""

    view_id: ViewId = ViewId("", 0)
    sender: ProcessId = ""
    payload: Any = None
    payload_size: int = 0

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + self.payload_size


@dataclass(frozen=True)
class LwgBatch(LwgMessage):
    """Several :class:`LwgData` payloads packed into one HWG multicast.

    All entries were sent by ``sender`` within one flush window and are
    bound for the same HWG (possibly for different LWGs mapped on it).
    The batch occupies a single slot in the HWG's total order, so
    unpacking the entries in tuple order preserves the sender's FIFO
    order and the group-wide total order.  ``batch_seq`` is a per-sender
    counter used by the batch-accounting checker; ``lwg`` is the
    entries' common group, or :data:`MIXED_BATCH` when the window
    coalesced payloads of several co-mapped LWGs — receivers always
    demultiplex per entry, never by this label.
    """

    sender: ProcessId = ""
    batch_seq: int = 0
    entries: Tuple[LwgData, ...] = ()

    def lwg_counts(self) -> Dict[LwgId, int]:
        """Entry count per LWG, in sorted-key order (tracing/accounting)."""
        counts: Dict[LwgId, int] = {}
        for entry in self.entries:
            counts[entry.lwg] = counts.get(entry.lwg, 0) + 1
        return {lwg: counts[lwg] for lwg in sorted(counts)}

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + sum(
            BATCH_ENTRY_HEADER_BYTES + e.payload_size for e in self.entries
        )


@dataclass(frozen=True)
class LwgJoinReq(LwgMessage):
    """A process (already an HWG member) asks to join the LWG."""

    joiner: ProcessId = ""


@dataclass(frozen=True)
class LwgLeaveReq(LwgMessage):
    """A member asks to leave the LWG."""

    leaver: ProcessId = ""
    view_id: ViewId = ViewId("", 0)


@dataclass(frozen=True)
class LwgViewMsg(LwgMessage):
    """Installation/announcement of an LWG view on its HWG.

    ``announce`` distinguishes a re-announcement of an existing view
    (sent after HWG view changes for state transfer and concurrent-view
    discovery) from the installation of a freshly minted view.
    """

    view: Optional[View] = None
    announce: bool = False

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + 16 * (len(self.view.members) if self.view else 0)


@dataclass(frozen=True)
class LwgStateMsg(LwgMessage):
    """Coordinator -> joiners: application state snapshot.

    Multicast immediately after the coordinator delivers the view that
    admits the joiners, in the same total order as the group's data —
    so the snapshot reflects exactly the messages ordered before it, and
    the joiner replays everything ordered after it on top.
    """

    view_id: ViewId = ViewId("", 0)
    targets: Tuple[ProcessId, ...] = ()
    state: Any = None
    state_size: int = 0

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + 16 * len(self.targets) + self.state_size


@dataclass(frozen=True)
class LwgDissolved(LwgMessage):
    """The last member left: HWG members drop their directory entry."""

    view_id: ViewId = ViewId("", 0)


@dataclass(frozen=True)
class MergeViewsMsg(LwgMessage):
    """Figure 5 MERGE-VIEWS: merge all concurrent LWG views on this HWG.

    ``lwg`` names the group whose concurrency triggered the merge (for
    tracing only — the protocol merges every LWG mapped on the HWG).
    """


@dataclass(frozen=True)
class AllViewsMsg(LwgMessage):
    """Figure 5 ALL-VIEWS: the sender's LWG views mapped on this HWG."""

    sender: ProcessId = ""
    views: Tuple[View, ...] = ()

    def size_bytes(self) -> int:
        return LWG_HEADER_BYTES + sum(16 * len(v.members) + 32 for v in self.views)


@dataclass(frozen=True)
class SwitchStart(LwgMessage):
    """Switch protocol, on the old HWG: members, go join ``to_hwg``."""

    view_id: ViewId = ViewId("", 0)
    from_hwg: HwgId = ""
    to_hwg: HwgId = ""
    epoch: int = 0


@dataclass(frozen=True)
class SwitchReady(LwgMessage):
    """Switch protocol, on the old HWG: ``member`` now sits in ``to_hwg``."""

    view_id: ViewId = ViewId("", 0)
    to_hwg: HwgId = ""
    member: ProcessId = ""
    epoch: int = 0


@dataclass(frozen=True)
class SwitchCommit(LwgMessage):
    """Switch protocol, on the old HWG: cut-over point.

    Totally ordered on the old HWG, so every member stops delivering the
    LWG there after the same message — the virtual-synchrony cut.
    Remaining HWG members install a forward pointer to ``to_hwg``.
    """

    view_id: ViewId = ViewId("", 0)
    to_hwg: HwgId = ""
    epoch: int = 0


@dataclass(frozen=True)
class SwitchAbort(LwgMessage):
    """Switch protocol: the coordinator gave up; resume on the old HWG."""

    view_id: ViewId = ViewId("", 0)
    epoch: int = 0


@dataclass(frozen=True)
class RedirectLwg(LwgMessage):
    """Unicast forward-pointer reply to a joiner with an outdated mapping."""

    to_hwg: HwgId = ""
