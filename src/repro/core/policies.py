"""The Figure-1 mapping heuristics: share, interference and shrink rules.

The rules are implemented as pure functions over a :class:`PolicySnapshot`
of one process's local knowledge, so they are unit-testable and
benchmarkable without a running stack.  The surrounding guarantees of
Section 3.2 are honoured here:

* only the *coordinator* of an LWG decides its mapping;
* decisions are deterministic functions of the observed configuration —
  ties are broken by the total order on group identifiers;
* hysteresis comes from ``k_m``/``k_c`` (with the defaults, an LWG maps
  onto an HWG when common members exceed 75% of the HWG and the mapping
  survives until they drop to 25%);
* the heuristics run periodically with a long period, so churn settles
  before the next evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..naming.records import HwgId, LwgId
from ..vsync.view import ProcessId
from .config import LwgConfig

Members = FrozenSet[ProcessId]


# ----------------------------------------------------------------------
# Figure-1 predicates
# ----------------------------------------------------------------------
def is_minority(g1: Members, g2: Members, k_m: int) -> bool:
    """``g1`` is a minority of ``g2``: g1 ⊆ g2 and |g1| <= |g2| / k_m."""
    return g1 <= g2 and len(g1) * k_m <= len(g2)


def is_close_enough(g1: Members, g2: Members, k_c: int) -> bool:
    """``g1`` and ``g2`` are close: g1 ⊆ g2 and |g2| - |g1| <= |g2| / k_c."""
    return g1 <= g2 and (len(g2) - len(g1)) * k_c <= len(g2)


def share_rule_applies(h1: Members, h2: Members, k_m: int) -> bool:
    """Figure-1 share rule condition for collapsing two HWGs.

    With ``|h1| = n1 + k``, ``|h2| = n2 + k`` and ``k = |h1 ∩ h2|``:
    collapse unless one HWG is a minority subset of the other, and only
    when the overlap is large: ``k > sqrt(2 * n1 * n2)``.
    """
    k = len(h1 & h2)
    n1 = len(h1) - k
    n2 = len(h2) - k
    subset_minority = (h1 <= h2 and is_minority(h1, h2, k_m)) or (
        h2 <= h1 and is_minority(h2, h1, k_m)
    )
    return not subset_minority and k > math.sqrt(2 * n1 * n2)


# ----------------------------------------------------------------------
# Snapshot and actions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicySnapshot:
    """Everything one process knows when the heuristics run.

    Attributes:
        node: the evaluating process.
        now_us: current simulation time.
        coordinated_lwgs: lwg -> (members, underlying hwg) for every LWG
            this process currently coordinates.
        hwg_members: hwg -> membership, for every HWG whose membership
            this process knows (i.e. the HWGs it belongs to).
        local_lwgs_per_hwg: hwg -> number of this process's LWGs riding
            on it (the shrink-rule input).
        hwg_idle_since: hwg -> sim time when the HWG last carried one of
            our LWGs (for the shrink grace period).
        busy_lwgs: LWGs currently mid-switch (never re-decided).
        hwg_pinned: hwg -> (lwg, members) for every LWG view recorded in
            the HWG's directory — cargo the placement optimizer must
            treat as immovable when it isn't ours to move.  Only
            populated under ``placement_policy="optimizer"``.
    """

    node: ProcessId
    now_us: int
    coordinated_lwgs: Dict[LwgId, Tuple[Members, HwgId]]
    hwg_members: Dict[HwgId, Members]
    local_lwgs_per_hwg: Dict[HwgId, int]
    hwg_idle_since: Dict[HwgId, int] = field(default_factory=dict)
    busy_lwgs: FrozenSet[LwgId] = frozenset()
    hwg_pinned: Dict[HwgId, Tuple[Tuple[LwgId, Members], ...]] = field(
        default_factory=dict
    )
    #: Zoned topology (PROTOCOLS.md §20): the evaluating node's zone.
    #: Switch targets are restricted to zone-local pools; None (flat)
    #: accepts every HWG.
    zone: Optional[int] = None

    def pool_usable(self, hwg: HwgId) -> bool:
        """Is ``hwg`` a legal switch/co-map target from our zone?"""
        from .ids import hwg_in_zone

        return hwg_in_zone(hwg, self.zone)

    # Derived data shared by the rule passes (each pass used to redo the
    # sort/scan itself).  ``cached_property`` stores into the instance
    # ``__dict__`` directly, which a frozen dataclass permits.
    @cached_property
    def sorted_hwgs(self) -> Tuple[HwgId, ...]:
        """Every known HWG, in the identifier total order."""
        return tuple(sorted(self.hwg_members))

    @cached_property
    def populated_hwgs(self) -> Tuple[HwgId, ...]:
        """Known HWGs with a non-empty membership, sorted."""
        return tuple(h for h in self.sorted_hwgs if self.hwg_members[h])

    @cached_property
    def hwg_items(self) -> Tuple[Tuple[HwgId, Members], ...]:
        """(hwg, members) pairs in the identifier total order."""
        return tuple((h, self.hwg_members[h]) for h in self.sorted_hwgs)

    @cached_property
    def sorted_coordinated(self) -> Tuple[LwgId, ...]:
        """The LWGs we coordinate, in the identifier total order."""
        return tuple(sorted(self.coordinated_lwgs))


@dataclass(frozen=True)
class SwitchAction:
    """Switch ``lwg`` onto ``to_hwg`` (None = create a fresh HWG)."""

    lwg: LwgId
    to_hwg: Optional[HwgId]
    reason: str


@dataclass(frozen=True)
class LeaveHwgAction:
    """Leave ``hwg`` (shrink rule: it carries none of our LWGs)."""

    hwg: HwgId
    reason: str = "shrink"


PolicyAction = object  # SwitchAction | LeaveHwgAction (py39-compatible alias)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class PolicyEngine:
    """Evaluates the mapping rules over a snapshot.

    Under the default ``placement_policy="paper"`` this is exactly the
    Figure-1 share/interference/shrink cascade.  Under ``"optimizer"``
    the share and interference rules are replaced by the global
    placement optimizer (:mod:`repro.core.placement`); the shrink rule
    drains emptied HWGs under both.
    """

    def __init__(self, config: Optional[LwgConfig] = None):
        self.config = config or LwgConfig()
        self._placement = None
        if self.config.placement_policy == "optimizer":
            from .placement import OptimizerPlacementPolicy  # no import cycle at call time

            self._placement = OptimizerPlacementPolicy(self.config)

    def evaluate(
        self,
        snap: PolicySnapshot,
        mint: Optional[Callable[[], HwgId]] = None,
    ) -> List[PolicyAction]:
        """Return the actions the rules prescribe, deterministically ordered.

        ``mint`` lets the optimizer pre-mint one HWG id per fresh
        placement group so co-placed LWGs land on a *shared* new HWG
        (``SwitchAction(to_hwg=None)`` would mint one each).  The paper
        rules never call it.
        """
        actions: List[PolicyAction] = []
        if self._placement is not None:
            actions += self._placement.evaluate(snap, mint=mint)
            actions += self._shrink_rule(snap)
            return actions
        switched: Set[LwgId] = set()
        actions += self._share_rule(snap, switched)
        actions += self._interference_rule(snap, switched)
        actions += self._shrink_rule(snap)
        return actions

    # -- Share rule ----------------------------------------------------
    def _share_rule(self, snap: PolicySnapshot, switched: Set[LwgId]) -> List[PolicyAction]:
        """Collapse HWGs with large pairwise overlap into one per cluster.

        Pairs satisfying the Figure-1 condition form collapse *clusters*
        (connected components); every cluster converges on its highest-gid
        member in a single step — the pairwise rule alone would reach the
        same fixed point through a cascade of intermediate switches.  The
        collapse is realised by switching every LWG we coordinate off the
        losing HWGs; other coordinators do the same for theirs, and the
        shrink rule then drains the empty HWGs.
        """
        actions: List[PolicyAction] = []
        hwgs = tuple(h for h in snap.populated_hwgs if snap.pool_usable(h))
        parent: Dict[HwgId, HwgId] = {h: h for h in hwgs}

        def find(h: HwgId) -> HwgId:
            while parent[h] != h:
                parent[h] = parent[parent[h]]
                h = parent[h]
            return h

        for i, h1 in enumerate(hwgs):
            for h2 in hwgs[i + 1:]:
                m1, m2 = snap.hwg_members[h1], snap.hwg_members[h2]
                if share_rule_applies(m1, m2, self.config.k_m):
                    parent[find(h1)] = find(h2)
        winners: Dict[HwgId, HwgId] = {}
        for h in hwgs:
            root = find(h)
            if h > winners.get(root, ""):
                winners[root] = h
        for lwg in snap.sorted_coordinated:
            if lwg in switched or lwg in snap.busy_lwgs:
                continue
            _, underlying = snap.coordinated_lwgs[lwg]
            if underlying not in parent:
                continue
            winner = winners[find(underlying)]
            if winner != underlying:
                switched.add(lwg)
                actions.append(SwitchAction(lwg, winner, reason="share"))
        return actions

    # -- Interference rule ----------------------------------------------
    def _interference_rule(
        self, snap: PolicySnapshot, switched: Set[LwgId]
    ) -> List[PolicyAction]:
        """Move minority LWGs to a close-enough HWG, or a fresh one."""
        actions: List[PolicyAction] = []
        for lwg in snap.sorted_coordinated:
            if lwg in switched or lwg in snap.busy_lwgs:
                continue
            members, underlying = snap.coordinated_lwgs[lwg]
            hwg_membership = snap.hwg_members.get(underlying)
            if hwg_membership is None:
                continue
            if not is_minority(members, hwg_membership, self.config.k_m):
                continue
            candidates = [
                hwg
                for hwg, hmembers in snap.hwg_items
                if hwg != underlying
                and snap.pool_usable(hwg)
                and is_close_enough(members, hmembers, self.config.k_c)
            ]
            switched.add(lwg)
            if candidates:
                # Deterministic selection by the identifier total order.
                actions.append(SwitchAction(lwg, max(candidates), reason="interference"))
            else:
                actions.append(SwitchAction(lwg, None, reason="interference-new"))
        return actions

    # -- Shrink rule ------------------------------------------------------
    def _shrink_rule(self, snap: PolicySnapshot) -> List[PolicyAction]:
        """Leave HWGs that have carried none of our LWGs for the grace period."""
        actions: List[PolicyAction] = []
        for hwg in snap.sorted_hwgs:
            if snap.local_lwgs_per_hwg.get(hwg, 0) > 0:
                continue
            idle_since = snap.hwg_idle_since.get(hwg, snap.now_us)
            if snap.now_us - idle_since >= self.config.shrink_grace_us:
                actions.append(LeaveHwgAction(hwg))
        return actions
