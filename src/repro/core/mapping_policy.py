"""Initial mapping policies: where does a brand-new LWG go?

The dynamic service uses the paper's optimistic rule: "The new LWG is
mapped onto some existing HWG and if the choice is later proven to be
inappropriate, the LWG will be switched onto a more appropriate HWG"
(Section 3.2).  The static service pins everything to one global HWG,
and the isolated policy gives every LWG a private HWG (an LWG-layer
analogue of running without the service, useful for ablations).
"""

from __future__ import annotations

from typing import Optional

from ..naming.records import HwgId, LwgId
from ..vsync.membership import EndpointState
from .ids import is_hwg_id


class InitialMappingPolicy:
    """Strategy interface: pick the HWG for a newly created LWG."""

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        """Return an existing HWG id, or None to mint a fresh HWG."""
        raise NotImplementedError


def _member_hwgs(service):
    """The service's cached member-HWG tuple (sorted), with a fallback
    scan for bare test harnesses that stub the service object."""
    getter = getattr(service, "member_hwgs", None)
    if getter is not None:
        return getter()
    return tuple(
        sorted(
            group
            for group, endpoint in service.stack.endpoints.items()
            if is_hwg_id(group) and endpoint.state is EndpointState.MEMBER
        )
    )


class DynamicMappingPolicy(InitialMappingPolicy):
    """Optimistic reuse: join the highest-gid HWG we already belong to.

    Deterministic (identifier total order) and maximises sharing; the
    interference rule later evicts LWGs that turn out to be minorities.
    """

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        member_hwgs = _member_hwgs(service)
        return member_hwgs[-1] if member_hwgs else None


class OptimizerMappingPolicy(InitialMappingPolicy):
    """Initial mapping under the placement optimizer: least-damage reuse.

    Where the paper's optimistic rule joins the *highest-gid* member
    HWG, the optimizer pairs with the *smallest* one: a brand-new LWG is
    a singleton whose membership is unknown, so the cheapest guess is
    the HWG whose fan-out it inflates least — the periodic optimizer
    re-places it once the membership is real.  Ties break on the
    identifier total order (highest wins), like the dynamic policy.
    """

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        best = None
        for hwg in _member_hwgs(service):
            endpoint = service.stack.endpoints.get(hwg)
            if endpoint is None or endpoint.current_view is None:
                continue
            key = (-len(endpoint.current_view.members), hwg)
            if best is None or key > best[0]:
                best = (key, hwg)
        return best[1] if best is not None else None


class StaticMappingPolicy(InitialMappingPolicy):
    """Every LWG maps onto one fixed global HWG (the paper's static service)."""

    def __init__(self, hwg: HwgId = "hwg:static:000000"):
        self.hwg = hwg

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        return self.hwg


class IsolatedMappingPolicy(InitialMappingPolicy):
    """Every LWG gets a private, freshly minted HWG."""

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        return None


class HintedMappingPolicy(InitialMappingPolicy):
    """Isis-style mapping from declared target memberships (Section 2).

    The Isis light-weight group service "require[s] the specification of
    the target membership of a user group to make appropriate mapping
    decisions" — the application announces who will eventually join, and
    the creator maps the group onto the HWG whose membership best covers
    that target (falling back to a fresh HWG when nothing covers it
    acceptably).  Implemented here as an ablation against the paper's
    *transparent* service: same machinery, but mapping quality depends on
    hint accuracy instead of run-time adaptation.
    """

    def __init__(self, hints: Optional[dict] = None, k_c: int = 4):
        #: lwg id -> iterable of expected member process ids.
        self.hints = dict(hints or {})
        self.k_c = k_c

    def set_hint(self, lwg: LwgId, expected_members) -> None:
        self.hints[lwg] = frozenset(expected_members)

    def choose(self, lwg: LwgId, service) -> Optional[HwgId]:
        from ..vsync.membership import EndpointState  # local import: no cycle
        from .policies import is_close_enough

        hint = self.hints.get(lwg)
        if hint is None:
            return DynamicMappingPolicy().choose(lwg, service)
        hint = frozenset(hint)
        candidates = []
        for group, endpoint in service.stack.endpoints.items():
            if not is_hwg_id(group):
                continue
            if endpoint.state is not EndpointState.MEMBER or endpoint.current_view is None:
                continue
            members = frozenset(endpoint.current_view.members)
            if hint <= members and is_close_enough(hint, members, self.k_c):
                candidates.append(group)
        return max(candidates) if candidates else None
