"""The transparent, dynamic, partitionable light-weight group service.

One :class:`LwgService` runs per process, layered over that process's
:class:`~repro.vsync.stack.ProtocolStack` (heavy-weight groups) and
:class:`~repro.naming.client.NamingClient`.  It gives applications the
same virtually-synchronous interface an HWG would (join / leave / send
downcalls, View / Data upcalls) while multiplexing many user groups over
a small pool of HWGs:

* the **data path** encapsulates each user message as ``<DATA, lwg_id,
  view, data>`` multicast on the underlying HWG, and filters on receipt
  (Section 3.1);
* **join/leave** are coordinated by each LWG view's coordinator through
  LWG view messages riding the HWG's total order;
* the **mapping policies** of Figure 1 run periodically and trigger the
  switch protocol (:mod:`repro.core.switching`);
* **partition reconciliation** (Section 6) combines naming-service
  callbacks, the deterministic highest-gid switch, and the Figure-5
  merge-views protocol (:mod:`repro.core.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..naming.client import NamingClient
from ..naming.messages import MultipleMappings
from ..naming.records import HwgId, LwgId, MappingRecord
from ..vsync.hwg import HwgEndpoint, HwgListener
from ..vsync.membership import EndpointState
from ..vsync.view import View, ViewId
from .batching import BatchPacker
from .config import LwgConfig
from .ids import lwg_id as canonical_lwg_id
from .ids import hwg_in_zone, is_hwg_id, mint_hwg_id
from .join_leave import JoinDriver
from .lwg_view import restrict_view
from .mapping_policy import DynamicMappingPolicy, InitialMappingPolicy
from .mapping_table import LocalLwg, LwgState, MappingTable
from .merge import MergeManager, ReconciliationHandler
from .messages import (
    AllViewsMsg,
    LwgBatch,
    LwgData,
    LwgDissolved,
    LwgJoinReq,
    LwgLeaveReq,
    LwgMessage,
    LwgStateMsg,
    LwgViewMsg,
    MergeViewsMsg,
    RedirectLwg,
    SwitchAbort,
    SwitchCommit,
    SwitchReady,
    SwitchStart,
)
from .policies import LeaveHwgAction, PolicyEngine, PolicySnapshot, SwitchAction
from .switching import SwitchDriver


class LwgListener:
    """User-facing upcalls for one light-weight group (Table 1 shape)."""

    def on_view(self, lwg: LwgId, view: View) -> None:
        """A new LWG view was installed."""

    def on_data(self, lwg: LwgId, src: str, payload: Any, size: int) -> None:
        """A totally-ordered LWG multicast was delivered."""

    def on_left(self, lwg: LwgId) -> None:
        """Our Leave completed."""

    # -- optional state transfer ---------------------------------------
    def get_state(self, lwg: LwgId) -> Any:
        """Snapshot the group's application state for a joining member.

        Called at the LWG coordinator at the exact total-order position
        where the joiner's view installs.  Return None (default) to
        disable state transfer for this group.
        """
        return None

    def on_state(self, lwg: LwgId, state: Any) -> None:
        """Receive the coordinator's snapshot on join, before any data."""


class LwgHandle:
    """Application-side handle to one joined LWG."""

    def __init__(self, service: "LwgService", lwg: LwgId):
        self._service = service
        self.lwg = lwg

    def send(self, payload: Any, size: Optional[int] = None) -> None:
        self._service.send(self.lwg, payload, size)

    def leave(self) -> None:
        self._service.leave(self.lwg)

    @property
    def view(self) -> Optional[View]:
        local = self._service.table.local(self.lwg)
        return local.view if local else None

    @property
    def is_member(self) -> bool:
        local = self._service.table.local(self.lwg)
        return bool(local and local.is_member)

    @property
    def hwg(self) -> Optional[HwgId]:
        local = self._service.table.local(self.lwg)
        return local.hwg if local else None


@dataclass
class LwgStats:
    """Per-process counters of the LWG layer."""

    data_sent: int = 0
    data_delivered: int = 0
    data_filtered: int = 0
    data_stale: int = 0
    batches_sent: int = 0
    batch_entries_sent: int = 0
    batches_unpacked: int = 0
    batch_entries_unpacked: int = 0
    lwg_views_installed: int = 0
    switches_started: int = 0
    switches_committed: int = 0
    switches_aborted: int = 0
    rejoin_recoveries: int = 0


class _HwgAdapter(HwgListener):
    """Routes one HWG endpoint's upcalls into the LWG service."""

    def __init__(self, service: "LwgService", hwg: HwgId):
        self.service = service
        self.hwg = hwg

    def on_view(self, group, view: View) -> None:
        self.service._on_hwg_view(self.hwg, view)

    def on_data(self, group, src, payload, size) -> None:
        self.service._on_hwg_data(self.hwg, src, payload, size)

    def on_stop(self, group, stop_ok) -> None:
        # Flush-before-view-change: hand any payloads still sitting in
        # the batch packer to the ordered channel of the closing view —
        # they are either ordered before the cut or queued and
        # re-published in the next view.  Beyond that the LWG layer
        # keeps nothing in flight outside the channel itself.
        self.service.packer.flush(self.hwg)
        stop_ok()

    def on_left(self, group) -> None:
        self.service._on_hwg_left(self.hwg)


class LwgService:
    """The light-weight group layer of one process."""

    def __init__(
        self,
        stack,
        naming: NamingClient,
        config: Optional[LwgConfig] = None,
        mapping_policy: Optional[InitialMappingPolicy] = None,
    ):
        self.stack = stack
        self.env = stack.env
        self.node = stack.node
        self.naming = naming
        self.config = config or LwgConfig()
        if mapping_policy is None:
            # The optimizer pairs with the least-damage initial guess;
            # the paper rules pair with the paper's optimistic reuse.
            if self.config.placement_policy == "optimizer":
                from .mapping_policy import OptimizerMappingPolicy

                mapping_policy = OptimizerMappingPolicy()
            else:
                mapping_policy = DynamicMappingPolicy()
        self.mapping_policy = mapping_policy
        #: (endpoint epoch, sorted member HWGs) — the cached member-HWG
        #: set the mapping policies consult on every join.
        self._member_hwgs_cache: Optional[Tuple[int, Tuple[HwgId, ...]]] = None
        self.table = MappingTable()
        self.merge_mgr = MergeManager(self)
        self.reconciler = ReconciliationHandler(self)
        self.policy_engine = PolicyEngine(self.config)
        self.stats = LwgStats()
        self.packer = BatchPacker(
            node=self.node,
            transmit=self._transmit_packed,
            set_timer=stack.set_timer,
            window_us=self.config.batch_window_us,
            max_bytes=self.config.batch_max_bytes,
        )
        self._join_drivers: Dict[LwgId, JoinDriver] = {}
        self._switch_drivers: Dict[LwgId, SwitchDriver] = {}
        self._hwg_counter = 0
        self._switch_epoch_counter = 0
        self._hwg_last_views: Dict[HwgId, View] = {}
        self._rejoin_after_leave: Set[HwgId] = set()
        naming.on_multiple_mappings = self._on_multiple_mappings
        stack.register_handler(self._handle_unicast)
        stack.env.failures.on_transition(self.node, self._on_crash_transition)
        if self.config.enable_policies:
            stack.set_periodic(
                self.config.policy_period_us,
                self.run_policies_once,
                jitter_stream=f"policy:{self.node}",
            )
        stack.set_periodic(
            self.config.announce_period_us,
            self._tick_announcements,
            jitter_stream=f"announce:{self.node}",
        )
        if self.config.enable_reconciliation:
            stack.set_periodic(
                self.config.mapping_audit_period_us,
                self._tick_mapping_audit,
                jitter_stream=f"audit:{self.node}",
            )

    def _on_crash_transition(self, crashed: bool) -> None:
        """Fail-stop semantics: a crashed process loses all LWG state.

        Recovery starts from a clean slate — the application re-joins its
        groups, receiving fresh views (and state transfer) like any new
        member.
        """
        if not crashed:
            return
        for driver in self._join_drivers.values():
            driver.cancel()
        self._join_drivers.clear()
        self._switch_drivers.clear()
        self.packer.reset()
        self.table = MappingTable()
        self.merge_mgr = MergeManager(self)
        self._hwg_last_views.clear()
        self._rejoin_after_leave.clear()
        self.naming.cancel_all()

    # ==================================================================
    # Public API
    # ==================================================================
    def join(self, name: str, listener: Optional[LwgListener] = None) -> LwgHandle:
        """Join (creating if needed) the user group ``name``."""
        lwg = canonical_lwg_id(name)
        local = self.table.ensure_local(lwg, listener or LwgListener())
        if local.state is LwgState.IDLE:
            local.state = LwgState.JOINING
            driver = JoinDriver(self, local)
            self._join_drivers[lwg] = driver
            driver.start()
        return LwgHandle(self, lwg)

    def leave(self, name: str) -> None:
        """Leave the user group ``name`` (async, completes via on_left)."""
        lwg = canonical_lwg_id(name)
        local = self.table.local(lwg)
        if local is None or not local.is_member:
            return
        assert local.view is not None and local.hwg is not None
        if local.view.members == (self.node,):
            # Last member: dissolve the LWG entirely.
            self.hwg_send(local.hwg, LwgDissolved(lwg=lwg, view_id=local.view.view_id))
            self._unregister_mapping(local)
            self._finish_lwg_leave(local)
            return
        local.state = LwgState.LEAVING
        self._send_leave_request(local)

    def groups(self) -> List[str]:
        """Names of every group this process currently belongs to."""
        return sorted(
            entry.lwg for entry in self.table.locals.values()
            if entry.state is not LwgState.IDLE
        )

    def members(self, name: str) -> Tuple[str, ...]:
        """Current membership of ``name`` as seen locally (empty if none)."""
        local = self.table.local(canonical_lwg_id(name))
        if local is None or local.view is None:
            return ()
        return local.view.members

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Debug snapshot: per-group state, view, mapping and role."""
        out: Dict[str, Dict[str, Any]] = {}
        for lwg, entry in sorted(self.table.locals.items()):
            out[lwg] = {
                "state": entry.state.value,
                "view": str(entry.view.view_id) if entry.view else None,
                "members": list(entry.view.members) if entry.view else [],
                "hwg": entry.hwg,
                "coordinator": entry.coordinator() == self.node,
                "switching": entry.switch_epoch is not None,
            }
        return out

    def shutdown(self) -> None:
        """Gracefully leave every group (async; upcalls still fire)."""
        for name in self.groups():
            self.leave(name)

    def send(self, name: str, payload: Any, size: Optional[int] = None) -> None:
        """Virtually synchronous multicast to the user group ``name``."""
        lwg = canonical_lwg_id(name)
        local = self.table.local(lwg)
        if local is None or local.state is LwgState.IDLE:
            raise RuntimeError(f"send to {lwg} before join")
        size = size if size is not None else self.config.default_payload_bytes
        self.stats.data_sent += 1
        if not local.is_member or local.switch_epoch is not None:
            local.pending_sends.append((payload, size))
            return
        self._transmit_data(local, payload, size)

    def _transmit_data(self, local: LocalLwg, payload: Any, size: int) -> None:
        assert local.view is not None and local.hwg is not None
        message = LwgData(
            lwg=local.lwg,
            view_id=local.view.view_id,
            sender=self.node,
            payload=payload,
            payload_size=size,
        )
        if self.config.enable_batching:
            self.packer.enqueue(local.hwg, message)
        else:
            self.hwg_send(local.hwg, message)

    def _transmit_packed(self, hwg: HwgId, message: Any) -> None:
        """Packer flush sink: hand one LwgData/LwgBatch to the channel.

        Deliberately does *not* go through :meth:`hwg_send`, whose
        flush-before-control rule would recurse into the packer.
        """
        if isinstance(message, LwgBatch):
            self.stats.batches_sent += 1
            self.stats.batch_entries_sent += len(message.entries)
            if self.env.tracer.enabled("lwg"):
                self.trace(
                    "batch_sent",
                    hwg=hwg,
                    batch_seq=message.batch_seq,
                    entries=len(message.entries),
                    lwgs=message.lwg_counts(),
                )
        endpoint = self.ensure_hwg(hwg)
        endpoint.send(message, message.size_bytes())

    # ==================================================================
    # Helpers used across the service and its drivers
    # ==================================================================
    def mint_hwg_id(self) -> HwgId:
        self._hwg_counter += 1
        zone = self.zone
        minted = mint_hwg_id(self.node, self._hwg_counter, zone=zone)
        if zone is not None and self.stack.env.tracer.enabled("zones"):
            self.stack.env.tracer.emit(
                "zones", "hwg_minted", node=self.node, hwg=minted, zone=zone
            )
        return minted

    @property
    def zone(self) -> Optional[int]:
        """This node's zone under the zoned topology, else None."""
        zones = getattr(self.stack, "zones", None)
        return zones.zone if zones is not None else None

    def mint_view_id(self) -> ViewId:
        return ViewId(self.node, self.stack.next_view_seq())

    def next_switch_epoch(self) -> int:
        self._switch_epoch_counter += 1
        return self._switch_epoch_counter

    def ensure_hwg(self, hwg: HwgId) -> HwgEndpoint:
        """Return this node's endpoint for ``hwg``, joining if needed.

        If the endpoint is mid-leave (e.g. the shrink rule drained it just
        as a join driver re-targeted it), the join is queued and re-issued
        the moment the leave completes.
        """
        endpoint = self.stack.endpoints.get(hwg)
        if endpoint is None:
            endpoint = self.stack.endpoint(hwg, _HwgAdapter(self, hwg))
        if endpoint.state is EndpointState.IDLE:
            endpoint.join()
        elif endpoint.state is EndpointState.LEAVING:
            self._rejoin_after_leave.add(hwg)
        return endpoint

    def hwg_endpoint(self, hwg: HwgId) -> Optional[HwgEndpoint]:
        return self.stack.endpoints.get(hwg)

    def member_hwgs(self) -> Tuple[HwgId, ...]:
        """Sorted HWGs this process is currently a member of.

        Cached against the stack's endpoint epoch (bumped on every
        endpoint state change), so the mapping policies stop rescanning
        every endpoint on every join.
        """
        epoch = self.stack.endpoint_epoch
        cached = self._member_hwgs_cache
        if cached is not None and cached[0] == epoch:
            return cached[1]
        zone = self.zone
        hwgs = tuple(
            sorted(
                group
                for group, endpoint in self.stack.endpoints.items()
                if is_hwg_id(group)
                and endpoint.state is EndpointState.MEMBER
                # Zone-local pools: never co-map onto a foreign zone's
                # HWG even when a cross-zone LWG made us a member of it.
                and hwg_in_zone(group, zone)
            )
        )
        self._member_hwgs_cache = (epoch, hwgs)
        return hwgs

    def hwg_send(self, hwg: HwgId, message: LwgMessage) -> None:
        # Control-messages-flush-first: data buffered before this control
        # message must not be reordered after it in the HWG total order.
        self.packer.flush(hwg)
        endpoint = self.ensure_hwg(hwg)
        endpoint.send(message, message.size_bytes())

    def trace(self, event: str, **fields: Any) -> None:
        self.env.tracer.emit("lwg", event, node=self.node, **fields)

    # ==================================================================
    # HWG upcalls
    # ==================================================================
    def _on_hwg_data(self, hwg: HwgId, src: str, payload: Any, size: int) -> None:
        if isinstance(payload, LwgData):
            self._on_lwg_data(hwg, payload)
        elif isinstance(payload, LwgBatch):
            self._on_lwg_batch(hwg, payload)
        elif isinstance(payload, LwgViewMsg):
            self._on_lwg_view_msg(hwg, payload)
        elif isinstance(payload, LwgJoinReq):
            self._on_lwg_join_req(hwg, payload)
        elif isinstance(payload, LwgLeaveReq):
            self._on_lwg_leave_req(hwg, payload)
        elif isinstance(payload, LwgStateMsg):
            self._on_lwg_state(hwg, payload)
        elif isinstance(payload, LwgDissolved):
            self.table.dir_for(hwg).remove_lwg(payload.lwg)
        elif isinstance(payload, MergeViewsMsg):
            self.merge_mgr.on_merge_views(hwg, payload)
        elif isinstance(payload, AllViewsMsg):
            self.merge_mgr.on_all_views(hwg, payload)
        elif isinstance(payload, SwitchStart):
            self._on_switch_start(hwg, payload)
        elif isinstance(payload, SwitchReady):
            self._on_switch_ready(hwg, payload)
        elif isinstance(payload, SwitchCommit):
            self._on_switch_commit(hwg, payload)
        elif isinstance(payload, SwitchAbort):
            self._on_switch_abort(hwg, payload)

    # -- data path -------------------------------------------------------
    def _on_lwg_batch(self, hwg: HwgId, batch: LwgBatch) -> None:
        """Demultiplex a packed multicast: one LwgData at a time, in order.

        Each entry runs the full per-message delivery machinery (view
        filtering, state-transfer buffering, stale restamp, merge
        triggering) exactly as if it had arrived unbatched.
        """
        self.stats.batches_unpacked += 1
        self.stats.batch_entries_unpacked += len(batch.entries)
        if self.env.tracer.enabled("lwg"):
            self.trace(
                "batch_unpacked",
                hwg=hwg,
                sender=batch.sender,
                batch_seq=batch.batch_seq,
                entries=len(batch.entries),
                lwgs=batch.lwg_counts(),
            )
        for entry in batch.entries:
            self._on_lwg_data(hwg, entry)

    def _on_lwg_data(self, hwg: HwgId, message: LwgData) -> None:
        local = self.table.local(message.lwg)
        if local is None or not local.is_member or local.hwg != hwg:
            self.stats.data_filtered += 1
            return
        assert local.view is not None
        if message.view_id == local.view.view_id:
            if local.awaiting_state_for == local.view.view_id:
                # Fresh joiner: hold data until the state snapshot lands.
                local.state_buffer.append(
                    (message.sender, message.payload, message.payload_size)
                )
                return
            self.stats.data_delivered += 1
            local.delivered += 1
            if message.sender == local.coordinator():
                local.last_coordinator_heard = self.env.now
            self.trace(
                "lwg_data_delivered",
                lwg=message.lwg,
                view=str(local.view.view_id),
                sender=message.sender,
            )
            local.listener.on_data(
                message.lwg, message.sender, message.payload, message.payload_size
            )
        elif local.ancestors.is_stale(message.view_id):
            self.stats.data_stale += 1
            if message.sender == self.node and local.is_member:
                # Our own send raced a view change: it was ordered after
                # the cut but stamped with the superseded view, so every
                # member (including us) discards it identically.  Re-send
                # it under the current view — delivered exactly once.
                self.trace("data_restamped", lwg=message.lwg)
                self._transmit_data(local, message.payload, message.payload_size)
        else:
            # A concurrent view of our LWG shares this HWG: Figure 5, 106.
            self.merge_mgr.trigger(hwg, message.lwg)

    # -- view messages ----------------------------------------------------
    def _on_lwg_view_msg(self, hwg: HwgId, message: LwgViewMsg) -> None:
        view = message.view
        assert view is not None
        directory = self.table.dir_for(hwg)
        # Keep an active merge round's collected set complete: ordered
        # view messages are common knowledge at the coming flush point.
        self.merge_mgr.observe_view(hwg, view)
        # And lift any departure block: a view message delivered after a
        # SWITCH-COMMIT proves the view returned to this HWG.
        self.merge_mgr.observe_view_msg(hwg, view.view_id)
        local = self.table.local(view.group)
        if local is not None and local.view is not None and local.state in (
            LwgState.MEMBER,
            LwgState.LEAVING,
        ):
            current = local.view
            if view.view_id == current.view_id:
                if local.hwg == hwg:
                    # Our coordinator's (re-)announce on the HWG we map
                    # the view on: the view is alive.  An announce on a
                    # *different* HWG deliberately does not count — it
                    # means our mapping diverged from the coordinator's
                    # (e.g. a switch committed asymmetrically across a
                    # partition heal), which is exactly what the
                    # coordinator-silence backstop must detect.
                    local.last_coordinator_heard = self.env.now
                directory.record_view(view)
                return
            if local.ancestors.is_stale(view.view_id):
                return
            if current.view_id in view.parents:
                # Direct successor of our view.
                directory.record_view(view)
                local.minted_head = None
                if self.node in view.members:
                    self.install_local_view(local, view, reason="progress")
                elif local.state is LwgState.LEAVING:
                    self._finish_lwg_leave(local)
                else:
                    self._forced_out(local, hwg)
                return
            # Neither our view, nor stale, nor a successor: concurrent.
            directory.record_view(view)
            if local.hwg == hwg and local.is_member:
                self.merge_mgr.trigger(hwg, view.group)
            return
        if (
            local is not None
            and local.state is LwgState.JOINING
            and self.node in view.members
            and local.hwg == hwg
        ):
            directory.record_view(view)
            self._complete_join(local, view)
            return
        # Pure observer (an HWG member with no stake in this LWG).
        directory.record_view(view)
        if self.node in view.members and (
            local is None or local.state is LwgState.IDLE
        ):
            # A merge of concurrent branches resurrected us into a group
            # we already left (a leave raced a partition or a merge).
            # Ask the coordinator to take us out again.
            self.trace("ghost_eviction", lwg=view.group, view=str(view.view_id))
            self.hwg_send(
                hwg,
                LwgLeaveReq(lwg=view.group, leaver=self.node, view_id=view.view_id),
            )

    def _forced_out(self, local: LocalLwg, hwg: HwgId) -> None:
        """The coordinator dropped us (it believed us dead): rejoin."""
        self.stats.rejoin_recoveries += 1
        self.trace("lwg_forced_out", lwg=local.lwg, hwg=hwg)
        # A switch in flight for this LWG cannot survive our reset: abort
        # it while the view is still readable (the SwitchAbort unblocks
        # the other members), and clear our own switch markers so the
        # rejoined record starts clean.
        driver = self._switch_drivers.pop(local.lwg, None)
        if driver is not None and not driver.finished:
            driver.abort("coordinator reset")
        self._clear_switch_state(local)
        local.state = LwgState.JOINING
        local.view = None
        driver = JoinDriver(self, local)
        self._join_drivers[local.lwg] = driver
        driver.start()

    # -- join/leave requests (we may be the coordinator) -------------------
    def _acting_coordinator_of(self, local: Optional[LocalLwg], hwg: HwgId) -> bool:
        """True if we currently coordinate ``local``'s view on ``hwg``.

        A LEAVING coordinator still serves — it must process its own
        leave request (and any interleaved joins) until the view that
        excludes it installs, or the group wedges.
        """
        return (
            local is not None
            and local.state in (LwgState.MEMBER, LwgState.LEAVING)
            and local.view is not None
            and local.hwg == hwg
            and local.coordinator() == self.node
            and local.switch_epoch is None
        )

    def _on_lwg_join_req(self, hwg: HwgId, message: LwgJoinReq) -> None:
        if self.merge_mgr.round_active(hwg):
            # No view minting during a merge round: the minted message
            # would land after the flush and diverge from the merge.
            self.merge_mgr.defer(hwg, "join", message)
            return
        local = self.table.local(message.lwg)
        directory = self.table.dir_for(hwg)
        if self._acting_coordinator_of(local, hwg):
            assert local is not None
            base = local.minted_head or local.view
            assert base is not None
            if message.joiner in base.members:
                return  # duplicate request
            new_view = View(
                group=message.lwg,
                view_id=self.mint_view_id(),
                members=base.members + (message.joiner,),
                parents=(base.view_id,),
            )
            local.minted_head = new_view
            self.hwg_send(hwg, LwgViewMsg(lwg=message.lwg, view=new_view))
            return
        forward = directory.forward.get(message.lwg)
        if forward is not None and message.joiner != self.node:
            redirect = RedirectLwg(lwg=message.lwg, to_hwg=forward)
            self.stack.send(message.joiner, redirect, redirect.size_bytes())

    def _on_lwg_leave_req(self, hwg: HwgId, message: LwgLeaveReq) -> None:
        if self.merge_mgr.round_active(hwg):
            self.merge_mgr.defer(hwg, "leave", message)
            return
        local = self.table.local(message.lwg)
        if not self._acting_coordinator_of(local, hwg):
            return
        assert local is not None
        base = local.minted_head or local.view
        assert base is not None
        if message.leaver not in base.members:
            return
        remaining = tuple(m for m in base.members if m != message.leaver)
        if not remaining:
            return  # sole-member leaves are handled locally as dissolution
        new_view = View(
            group=message.lwg,
            view_id=self.mint_view_id(),
            members=remaining,
            parents=(base.view_id,),
        )
        local.minted_head = new_view
        self.hwg_send(hwg, LwgViewMsg(lwg=message.lwg, view=new_view))

    def _send_leave_request(self, local: LocalLwg) -> None:
        if local.state is not LwgState.LEAVING or local.hwg is None:
            return
        assert local.view is not None
        self.hwg_send(
            local.hwg,
            LwgLeaveReq(lwg=local.lwg, leaver=self.node, view_id=local.view.view_id),
        )
        self.stack.set_timer(self.config.join_retry_us, lambda: self._send_leave_request(local))

    def _finish_lwg_leave(self, local: LocalLwg) -> None:
        self.table.locals.pop(local.lwg, None)
        local.state = LwgState.IDLE
        self.trace("lwg_left", lwg=local.lwg)
        local.listener.on_left(local.lwg)

    # ==================================================================
    # View installation and naming registration
    # ==================================================================
    def install_local_view(self, local: LocalLwg, view: View, reason: str) -> None:
        """Adopt ``view`` as our current view of ``local.lwg``."""
        if local.awaiting_state_for is not None and local.awaiting_state_for != view.view_id:
            # The admission view was superseded before its snapshot
            # arrived: release the held data in order before moving on.
            self._release_state_buffer(local)
        old = local.view
        local.ancestors.advance(old, view)
        local.view = view
        local.minted_head = None
        local.views_installed += 1
        local.last_coordinator_heard = self.env.now
        local.last_view_change_us = self.env.now
        self.stats.lwg_views_installed += 1
        if local.hwg is not None:
            self.table.dir_for(local.hwg).record_view(view)
        if local.state is not LwgState.LEAVING:
            local.state = LwgState.MEMBER
        self.trace(
            "lwg_view_installed",
            lwg=local.lwg,
            view=str(view.view_id),
            members=list(view.members),
            hwg=local.hwg,
            reason=reason,
        )
        local.listener.on_view(local.lwg, view)
        if (
            old is not None
            and view.parents == (old.view_id,)
            and view.members[0] == self.node
        ):
            joiners = tuple(m for m in view.members if m not in old.members)
            if joiners:
                # State transfer: this total-order position is exactly the
                # joiners' admission point.
                state = local.listener.get_state(local.lwg)
                snapshot = LwgStateMsg(
                    lwg=local.lwg,
                    view_id=view.view_id,
                    targets=joiners,
                    state=state,
                    state_size=256 if state is not None else 0,
                )
                assert local.hwg is not None
                self.hwg_send(local.hwg, snapshot)
        if old is not None and old.members[0] == self.node:
            # We owned the naming record of the superseded view: retire it
            # explicitly.  (Genealogy GC also covers this when the full
            # parent chain reaches the servers, but the direct tombstone
            # keeps the database tight even when intermediate merge views
            # were never registered by their coordinators.)
            self._tombstone_view(local, old)
        if local.coordinator() == self.node:
            self.register_mapping(local)
        if local.switch_epoch is None and local.pending_sends:
            queued, local.pending_sends = local.pending_sends, []
            for payload, size in queued:
                self._transmit_data(local, payload, size)
        driver = self._switch_drivers.get(local.lwg)
        if driver is not None:
            driver.on_lwg_view_changed()

    def _complete_join(self, local: LocalLwg, view: View) -> None:
        if view.parents and len(view.members) > 1:
            # Admitted into an existing group: the coordinator's state
            # snapshot follows in the same total order.  Buffer data for
            # this view until it arrives (with a timeout guard in case
            # the coordinator dies at exactly this moment).
            local.awaiting_state_for = view.view_id
            expected = view.view_id

            def give_up() -> None:
                if local.awaiting_state_for == expected:
                    self.trace("state_transfer_timeout", lwg=local.lwg)
                    self._release_state_buffer(local)

            self.stack.set_timer(self.config.join_retry_us, give_up)
        self.install_local_view(local, view, reason="join")
        driver = self._join_drivers.pop(local.lwg, None)
        if driver is not None:
            driver.complete()

    def _on_lwg_state(self, hwg: HwgId, message: LwgStateMsg) -> None:
        local = self.table.local(message.lwg)
        if (
            local is None
            or not local.is_member
            or local.hwg != hwg
            or local.awaiting_state_for != message.view_id
            or self.node not in message.targets
        ):
            return
        if message.state is not None:
            local.listener.on_state(message.lwg, message.state)
        self._release_state_buffer(local)

    def _release_state_buffer(self, local: LocalLwg) -> None:
        local.awaiting_state_for = None
        buffered, local.state_buffer = local.state_buffer, []
        for sender, payload, size in buffered:
            self.stats.data_delivered += 1
            local.delivered += 1
            self.trace(
                "lwg_data_delivered",
                lwg=local.lwg,
                view=str(local.view.view_id) if local.view else None,
                sender=sender,
            )
            local.listener.on_data(local.lwg, sender, payload, size)

    def adopt_created_view(self, local: LocalLwg, view: View, hwg: HwgId) -> None:
        """JoinDriver won the creation race: we are the founding member."""
        local.hwg = hwg
        self._complete_join(local, view)
        # Tell the HWG about the newborn LWG (directory + discovery).
        self.hwg_send(hwg, LwgViewMsg(lwg=local.lwg, view=view, announce=True))

    def register_mapping(self, local: LocalLwg) -> None:
        """Coordinator duty: (re-)register our view-to-view mapping."""
        if local.view is None or local.hwg is None:
            return
        endpoint = self.hwg_endpoint(local.hwg)
        if endpoint is None or endpoint.current_view is None:
            return
        record = MappingRecord(
            lwg=local.lwg,
            lwg_view=local.view.view_id,
            lwg_members=local.view.members,
            hwg=local.hwg,
            hwg_view=endpoint.current_view.view_id,
            version=self.naming.next_version(),
            writer=self.node,
        )
        self.naming.set(record, parents=local.view.parents)

    def _tombstone_view(self, local: LocalLwg, old_view: View) -> None:
        """Delete the naming record of a view we coordinated, now superseded."""
        tombstone = MappingRecord(
            lwg=local.lwg,
            lwg_view=old_view.view_id,
            lwg_members=old_view.members,
            hwg=local.hwg or "",
            hwg_view=ViewId("", 0),
            version=self.naming.next_version(),
            writer=self.node,
            deleted=True,
        )
        self.naming.unset(tombstone)

    def _unregister_mapping(self, local: LocalLwg) -> None:
        if local.view is None or local.hwg is None:
            return
        endpoint = self.hwg_endpoint(local.hwg)
        hwg_view = (
            endpoint.current_view.view_id
            if endpoint is not None and endpoint.current_view is not None
            else ViewId("", 0)
        )
        tombstone = MappingRecord(
            lwg=local.lwg,
            lwg_view=local.view.view_id,
            lwg_members=local.view.members,
            hwg=local.hwg,
            hwg_view=hwg_view,
            version=self.naming.next_version(),
            writer=self.node,
            deleted=True,
        )
        self.naming.unset(tombstone)

    # ==================================================================
    # Switch protocol
    # ==================================================================
    def start_switch(self, local: LocalLwg, to_hwg: Optional[HwgId], reason: str) -> None:
        """Begin switching ``local`` to ``to_hwg`` (None mints a fresh HWG)."""
        if (
            not local.is_member
            or local.switch_epoch is not None
            or local.lwg in self._switch_drivers
            or local.coordinator() != self.node
        ):
            return
        driver = SwitchDriver(self, local, to_hwg, reason)
        self._switch_drivers[local.lwg] = driver
        self.stats.switches_started += 1
        self.ensure_hwg(driver.to_hwg)
        driver.start()

    def _on_switch_start(self, hwg: HwgId, message: SwitchStart) -> None:
        # Ordered at every HWG member: mark the view switch-in-flight so
        # a concurrent merge round excludes it (see MergeManager).
        self.merge_mgr.observe_switch_start(hwg, message.view_id)
        local = self.table.local(message.lwg)
        if (
            local is None
            or not local.is_member
            or local.hwg != hwg
            or local.view is None
            or local.view.view_id != message.view_id
        ):
            return
        local.switch_epoch = message.epoch
        local.switch_target = message.to_hwg
        self.ensure_hwg(message.to_hwg)
        epoch = message.epoch

        def stale_guard() -> None:
            # A dead switch coordinator must not wedge us forever.
            if local.switch_epoch == epoch:
                self.trace("switch_stale_guard", lwg=local.lwg, epoch=epoch)
                self._resume_after_failed_switch(local)

        self.stack.set_timer(2 * self.config.switch_timeout_us, stale_guard)
        self._check_switch_ready(local)

    def _check_switch_ready(self, local: LocalLwg) -> None:
        if local.switch_epoch is None or local.switch_target is None:
            return
        if getattr(local, "switch_ready_epoch", None) == local.switch_epoch:
            return
        endpoint = self.hwg_endpoint(local.switch_target)
        if (
            endpoint is None
            or endpoint.state is not EndpointState.MEMBER
            or endpoint.current_view is None
            or self.node not in endpoint.current_view.members
        ):
            return
        assert local.view is not None and local.hwg is not None
        local.switch_ready_epoch = local.switch_epoch
        self.hwg_send(
            local.hwg,
            SwitchReady(
                lwg=local.lwg,
                view_id=local.view.view_id,
                to_hwg=local.switch_target,
                member=self.node,
                epoch=local.switch_epoch,
            ),
        )

    def _on_switch_ready(self, hwg: HwgId, message: SwitchReady) -> None:
        driver = self._switch_drivers.get(message.lwg)
        if driver is not None:
            driver.on_ready(message)

    def _on_switch_commit(self, hwg: HwgId, message: SwitchCommit) -> None:
        # Ordered cut: the view left this HWG — no merge round here may
        # ever include it again (see MergeManager serialisation note).
        self.merge_mgr.observe_switch_commit(hwg, message.view_id)
        local = self.table.local(message.lwg)
        directory = self.table.dir_for(hwg)
        # A commit whose epoch we no longer track can still bind us: if
        # our stale guard gave up on a slow (not dead) switch
        # coordinator and resumed on the old HWG, the commit for our
        # *current* view arriving afterwards is the real cut — it is
        # totally ordered on this HWG, and the other members moved at
        # it.  Ignoring it would strand us on an HWG where nobody
        # listens to this LWG anymore (and the naming record of our
        # branch is garbage-collected once the movers merge, so no
        # MULTIPLE-MAPPINGS conflict would ever pull us back).
        late_commit = (
            local is not None
            and local.switch_epoch is None
            and local.view is not None
            and local.view.view_id == message.view_id
        )
        if (
            local is not None
            and local.state in (LwgState.MEMBER, LwgState.LEAVING)
            and local.hwg == hwg
            and (local.switch_epoch == message.epoch or late_commit)
        ):
            if late_commit:
                self.trace(
                    "switch_commit_late",
                    lwg=message.lwg,
                    to_hwg=message.to_hwg,
                    epoch=message.epoch,
                )
            local.hwg = message.to_hwg
            self._clear_switch_state(local)
            directory.remove_lwg(message.lwg, forward_to=message.to_hwg)
            if local.view is not None:
                self.table.dir_for(message.to_hwg).record_view(local.view)
            self.trace(
                "switch_committed",
                lwg=message.lwg,
                from_hwg=hwg,
                to_hwg=message.to_hwg,
            )
            if local.pending_sends:
                queued, local.pending_sends = local.pending_sends, []
                for payload, size in queued:
                    self._transmit_data(local, payload, size)
            if local.coordinator() == self.node:
                self.stats.switches_committed += 1
                self.register_mapping(local)
                assert local.view is not None
                self.hwg_send(
                    message.to_hwg,
                    LwgViewMsg(lwg=message.lwg, view=local.view, announce=True),
                )
                self._switch_drivers.pop(message.lwg, None)
        else:
            # Pure observer on the old HWG: install the forward pointer.
            directory.remove_lwg(message.lwg, forward_to=message.to_hwg)

    def _on_switch_abort(self, hwg: HwgId, message: SwitchAbort) -> None:
        self.merge_mgr.observe_switch_abort(hwg, message.view_id)
        local = self.table.local(message.lwg)
        if local is not None and local.switch_epoch == message.epoch:
            self._resume_after_failed_switch(local)
        if self._switch_drivers.get(message.lwg) is not None:
            if self._switch_drivers[message.lwg].epoch == message.epoch:
                self.stats.switches_aborted += 1
                self._switch_drivers.pop(message.lwg, None)

    def _clear_switch_state(self, local: LocalLwg) -> None:
        local.switch_epoch = None
        local.switch_target = None
        local.switch_ready_epoch = None

    def _resume_after_failed_switch(self, local: LocalLwg) -> None:
        """Abort path: resume LWG traffic on the old HWG, releasing any
        sends buffered while the switch was in flight."""
        self._clear_switch_state(local)
        if local.is_member and local.pending_sends:
            queued, local.pending_sends = local.pending_sends, []
            for payload, size in queued:
                self._transmit_data(local, payload, size)

    # ==================================================================
    # HWG view changes
    # ==================================================================
    def _on_hwg_view(self, hwg: HwgId, view: View) -> None:
        old_view = self._hwg_last_views.get(hwg)
        self._hwg_last_views[hwg] = view
        alive = set(view.members)
        directory = self.table.dir_for(hwg)
        # 1. The Figure-5 flush point: merge collected concurrent views.
        self.merge_mgr.on_hwg_view(hwg, view)
        # 2. Restrict local LWG views that lost members with this change.
        for local in self.table.local_lwgs_on(hwg):
            if local.view is None:
                continue
            survivors = [m for m in local.view.members if m in alive]
            if len(survivors) < len(local.view.members) and survivors:
                if survivors[0] == self.node:
                    restricted = restrict_view(local.view, survivors, self.mint_view_id())
                    self.hwg_send(hwg, LwgViewMsg(lwg=local.lwg, view=restricted))
        # 3. Directory entries whose members all vanished are dead views.
        directory.prune_members(alive)
        # 4. Coordinator duty: refresh view-to-view mappings (the HWG view
        #    identifier under our LWG views just changed — Table 4 step 2).
        for local in self.table.local_lwgs_on(hwg):
            if local.is_member and local.coordinator() == self.node and local.switch_epoch is None:
                self.register_mapping(local)
        # 5. State transfer + concurrent-view discovery towards newcomers.
        added = alive - set(old_view.members) if old_view is not None else set()
        if added:
            for local in self.table.local_lwgs_on(hwg):
                if local.is_member and local.coordinator() == self.node:
                    assert local.view is not None
                    self.hwg_send(
                        hwg, LwgViewMsg(lwg=local.lwg, view=local.view, announce=True)
                    )
        # 6. Joiners waiting for this HWG.
        if self.node in alive:
            for driver in list(self._join_drivers.values()):
                if driver.target_hwg == hwg:
                    driver.on_hwg_ready(hwg)
        # 7. Switch members waiting to reach their target HWG.
        for local in list(self.table.locals.values()):
            if local.switch_target == hwg:
                self._check_switch_ready(local)
        # 8. Shrink-rule bookkeeping.
        if self.table.local_lwgs_on(hwg):
            directory.last_useful_at = self.env.now
        # 9. Replay join/leave requests deferred during the merge round.
        for kind, message in self.merge_mgr.take_deferred(hwg):
            if kind == "join":
                self._on_lwg_join_req(hwg, message)
            else:
                self._on_lwg_leave_req(hwg, message)

    def _on_hwg_left(self, hwg: HwgId) -> None:
        self.table.directory.pop(hwg, None)
        self._hwg_last_views.pop(hwg, None)
        self.stack.drop_endpoint(hwg)
        self.trace("hwg_left", hwg=hwg)
        if hwg in self._rejoin_after_leave:
            # Someone asked for this HWG while we were leaving it.
            self._rejoin_after_leave.discard(hwg)
            self.ensure_hwg(hwg)

    # ==================================================================
    # Policies (Figure 1)
    # ==================================================================
    def build_policy_snapshot(self) -> PolicySnapshot:
        coordinated = {}
        for local in self.table.coordinated_lwgs(self.node):
            if local.switch_epoch is None and local.hwg is not None:
                assert local.view is not None
                coordinated[local.lwg] = (frozenset(local.view.members), local.hwg)
        hwg_members = {}
        local_per_hwg = {}
        idle_since = {}
        hwg_pinned = {}
        want_pinned = self.config.placement_policy == "optimizer"
        for hwg, endpoint in self.stack.endpoints.items():
            if not hwg.startswith("hwg:"):
                continue
            if endpoint.state is not EndpointState.MEMBER or endpoint.current_view is None:
                continue
            hwg_members[hwg] = frozenset(endpoint.current_view.members)
            used_by = self.table.local_lwgs_on(hwg)
            local_per_hwg[hwg] = len(used_by)
            directory = self.table.dir_for(hwg)
            if used_by:
                directory.last_useful_at = self.env.now
            idle_since[hwg] = directory.last_useful_at
            if want_pinned:
                # Every LWG view the directory pins on this HWG; the
                # optimizer filters out the ones it may move itself.
                hwg_pinned[hwg] = tuple(
                    (lwg, frozenset(v.members))
                    for lwg, v in sorted(directory.views.items())
                )
        busy = {l.lwg for l in self.table.locals.values() if l.switch_epoch is not None}
        busy |= set(self._switch_drivers)
        if want_pinned:
            # Stability hysteresis: the optimizer must not move a group
            # whose view is still settling (joins in flight) — churning
            # two HWGs' member sets at once races the joiners' own HWG
            # joins.  The paper rules never see this set.
            settle = self.config.placement_settle_us
            busy |= {
                lwg
                for lwg, local in self.table.locals.items()
                if local.is_member
                and self.env.now - local.last_view_change_us < settle
            }
        busy = frozenset(busy)
        return PolicySnapshot(
            node=self.node,
            now_us=self.env.now,
            coordinated_lwgs=coordinated,
            hwg_members=hwg_members,
            local_lwgs_per_hwg=local_per_hwg,
            hwg_idle_since=idle_since,
            busy_lwgs=busy,
            hwg_pinned=hwg_pinned,
            zone=self.zone,
        )

    def run_policies_once(self) -> List[object]:
        """Evaluate the Figure-1 rules and execute the resulting actions."""
        snapshot = self.build_policy_snapshot()
        actions = self.policy_engine.evaluate(snapshot, mint=self.mint_hwg_id)
        for action in actions:
            if isinstance(action, SwitchAction):
                local = self.table.local(action.lwg)
                if local is not None:
                    self.trace(
                        "policy_switch",
                        lwg=action.lwg,
                        to_hwg=action.to_hwg,
                        reason=action.reason,
                    )
                    self.start_switch(local, action.to_hwg, reason=action.reason)
            elif isinstance(action, LeaveHwgAction):
                self._leave_hwg_if_unused(action.hwg)
        return actions

    def _tick_announcements(self) -> None:
        """Periodic LWG view beacons (local peer discovery liveness).

        Each coordinator re-announces its current view on its HWG.  A
        member of a concurrent co-mapped view that hears it triggers the
        Figure-5 merge — even when the groups carry no data traffic.
        """
        for local in self.table.coordinated_lwgs(self.node):
            if local.switch_epoch is not None or local.hwg is None:
                continue
            if self.merge_mgr.round_active(local.hwg):
                continue
            assert local.view is not None
            self.hwg_send(
                local.hwg,
                LwgViewMsg(lwg=local.lwg, view=local.view, announce=True),
            )
        # Coordinator-silence backstop: a member whose coordinator has
        # gone quiet for several announce periods is holding an
        # abandoned view (the coordinator adopted a different lineage
        # via a racing switch or an asymmetric partition-heal merge, so
        # it will never announce — or tombstone — this one).  The HWG
        # layer cannot flag it: the coordinator is alive and still an
        # HWG member.  Rejoin through the naming service.
        now = self.env.now
        for local in list(self.table.locals.values()):
            if (
                not local.is_member
                or local.switch_epoch is not None
                or local.hwg is None
                or local.coordinator() == self.node
            ):
                continue
            if now - local.last_coordinator_heard >= self.config.coordinator_silence_us:
                self.trace(
                    "coordinator_silence",
                    lwg=local.lwg,
                    hwg=local.hwg,
                    view=str(local.view.view_id) if local.view else None,
                )
                self._forced_out(local, local.hwg)

    def _tick_mapping_audit(self) -> None:
        """Self-healing backstop: verify our registered mappings exist.

        A record written to one name-server replica inside a partition
        can be destroyed — crash plus corrupted store — before
        anti-entropy replicates it.  A missing record raises no
        MULTIPLE-MAPPINGS conflict, so no callback covers the loss; the
        coordinator, as the record's authoritative writer, periodically
        re-reads the naming service and re-registers.  The fresh write
        also supersedes a joiner's same-version burial tombstone (its
        version is strictly higher), un-burying mappings that were
        declared dead while we were merely unreachable.
        """
        for local in self.table.coordinated_lwgs(self.node):
            if (
                local.switch_epoch is not None
                or local.hwg is None
                or local.view is None
            ):
                continue
            expect = local.view.view_id

            def check(records, lwg=local.lwg, expect=expect):
                current = self.table.local(lwg)
                if (
                    current is None
                    or not current.is_member
                    or current.view is None
                    or current.view.view_id != expect
                    or current.switch_epoch is not None
                    or current.coordinator() != self.node
                ):
                    return  # state moved on while the read was in flight
                # The record must cite our view AND our actual HWG: a
                # surviving older record for the same view with a stale
                # hwg field (the newer write was destroyed) hides the
                # branch just as thoroughly as a missing record.
                if any(
                    not r.deleted
                    and r.lwg_view == expect
                    and r.hwg == current.hwg
                    for r in records
                ):
                    return
                self.trace("mapping_reasserted", lwg=lwg, view=str(expect))
                self.register_mapping(current)

            self.naming.read(local.lwg, check)

    def _leave_hwg_if_unused(self, hwg: HwgId) -> None:
        if hwg in self.table.hwgs_in_use():
            return
        endpoint = self.hwg_endpoint(hwg)
        if endpoint is None or endpoint.state is not EndpointState.MEMBER:
            return
        self.trace("shrink_leave", hwg=hwg)
        endpoint.leave()

    # ==================================================================
    # Naming-service callback and unicast handling
    # ==================================================================
    def _on_multiple_mappings(self, message: MultipleMappings) -> None:
        if self.config.enable_reconciliation:
            self.reconciler.on_multiple_mappings(message)

    def _handle_unicast(self, src: str, msg: Any) -> bool:
        if isinstance(msg, RedirectLwg):
            driver = self._join_drivers.get(msg.lwg)
            if driver is not None:
                driver.on_redirect(msg.to_hwg)
            return True
        return False
