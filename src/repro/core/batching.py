"""Data-path batching: pack LWG DATA payloads per destination HWG.

The paper's economics argue that many light-weight groups amortize one
heavy-weight group's machinery — membership, failure detection, flush.
This module extends the amortization to the data path: every LWG
``send()`` within a short flush window whose encapsulated ``LwgData``
is bound for the *same* HWG is coalesced into a single
:class:`~repro.core.messages.LwgBatch` occupying one slot of the HWG's
total order (one Publish, one Ordered multicast, one piggybacked ack),
instead of one full protocol round-trip per payload.

Correctness rules (PROTOCOLS.md §15):

* **Entry order is send order.**  A batch is unpacked in tuple order at
  every receiver, inside a single totally-ordered delivery, so FIFO per
  sender and group-wide total order are exactly what the unbatched path
  gives.
* **Control messages flush first.**  Any non-DATA LWG message sent on an
  HWG (view minting, join/leave, switch, merge) flushes that HWG's
  pending batch before it is handed to the ordered channel — data sent
  before a control message is never reordered after it.
* **View changes flush first.**  The HWG ``on_stop`` upcall (flush
  protocol starting) flushes the packer before acknowledging the stop,
  so buffered payloads reach the ordered channel in the closing view —
  either ordered before the cut or queued and re-published in the next
  view by the channel's own pending machinery.
* **Crash wipes the buffer.**  Fail-stop semantics: payloads buffered at
  a crashed process are lost exactly like payloads queued in its ordered
  channel.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..naming.records import HwgId
from .messages import MIXED_BATCH, LwgBatch, LwgData


class BatchPacker:
    """Per-HWG time- and byte-bounded coalescing of :class:`LwgData`.

    ``transmit(hwg, message)`` forwards a flushed message (a raw
    ``LwgData`` for singleton flushes, an ``LwgBatch`` otherwise) to the
    HWG's ordered channel; ``set_timer(delay_us, callback)`` arms the
    flush-window timer.
    """

    def __init__(
        self,
        node: str,
        transmit: Callable[[HwgId, LwgData | LwgBatch], None],
        set_timer: Callable[[int, Callable[[], None]], object],
        window_us: int,
        max_bytes: int,
    ):
        self.node = node
        self._transmit = transmit
        self._set_timer = set_timer
        self.window_us = window_us
        self.max_bytes = max_bytes
        self._buffers: Dict[HwgId, List[LwgData]] = {}
        self._buffered_bytes: Dict[HwgId, int] = {}
        self._timer_armed: Dict[HwgId, bool] = {}
        #: Per-HWG window generation.  Every flush (and crash reset)
        #: bumps it; an armed timer captures the generation at arm time
        #: and its firing is ignored if they no longer match, so a
        #: byte-cap or control-message flush cannot leave a stale timer
        #: that silently shortens the next batch's window.
        self._timer_gen: Dict[HwgId, int] = {}
        self._batch_seq = 0
        # Counters (surfaced through LwgStats by the service).
        self.batches_sent = 0
        self.entries_batched = 0
        self.singleton_flushes = 0

    # ------------------------------------------------------------------
    # Enqueue / flush
    # ------------------------------------------------------------------
    def enqueue(self, hwg: HwgId, message: LwgData) -> None:
        """Buffer ``message`` for ``hwg``; flush on byte cap, else arm timer."""
        buffer = self._buffers.setdefault(hwg, [])
        buffer.append(message)
        total = self._buffered_bytes.get(hwg, 0) + message.payload_size
        self._buffered_bytes[hwg] = total
        if total >= self.max_bytes:
            self.flush(hwg)
            return
        if not self._timer_armed.get(hwg, False):
            self._timer_armed[hwg] = True
            generation = self._timer_gen.get(hwg, 0)
            self._set_timer(self.window_us, lambda: self._on_timer(hwg, generation))

    def _on_timer(self, hwg: HwgId, generation: int) -> None:
        if generation != self._timer_gen.get(hwg, 0):
            return  # stale: the window this timer was arming already flushed
        self.flush(hwg)

    def flush(self, hwg: HwgId) -> None:
        """Emit the pending buffer for ``hwg`` (no-op when empty)."""
        buffer = self._buffers.get(hwg)
        if not buffer:
            return
        self._timer_armed[hwg] = False
        self._timer_gen[hwg] = self._timer_gen.get(hwg, 0) + 1
        entries, self._buffers[hwg] = buffer, []
        self._buffered_bytes[hwg] = 0
        if len(entries) == 1:
            # No packing win for a singleton: send the bare LwgData and
            # skip the batch envelope (and the unpack accounting).
            self.singleton_flushes += 1
            self._transmit(hwg, entries[0])
            return
        self._batch_seq += 1
        self.batches_sent += 1
        self.entries_batched += len(entries)
        lwgs = {entry.lwg for entry in entries}
        batch = LwgBatch(
            lwg=entries[0].lwg if len(lwgs) == 1 else MIXED_BATCH,
            sender=self.node,
            batch_seq=self._batch_seq,
            entries=tuple(entries),
        )
        self._transmit(hwg, batch)

    def flush_all(self) -> None:
        """Flush every HWG's pending buffer (quiesce / shutdown)."""
        for hwg in sorted(h for h, b in self._buffers.items() if b):
            self.flush(hwg)

    def reset(self) -> None:
        """Drop all buffered payloads (fail-stop crash semantics)."""
        self._buffers.clear()
        self._buffered_bytes.clear()
        # Invalidate every armed window, not just clear the flags: a
        # timer surviving the reset (or re-arming races around recovery)
        # must not flush a post-recovery buffer early.
        for hwg in self._timer_armed:
            self._timer_gen[hwg] = self._timer_gen.get(hwg, 0) + 1
        self._timer_armed.clear()

    def pending_entries(self, hwg: HwgId) -> int:
        return len(self._buffers.get(hwg, ()))
