"""Light-weight group views.

LWG views reuse the :class:`~repro.vsync.view.View` structure (a group
id, a ``(coordinator, seq)`` view id, seniority-ordered members and
parent view ids).  This module adds the LWG-specific operations:

* **deterministic merged view identifiers** — the Figure-5 protocol
  merges concurrent views "in a decentralized and deterministic way
  (since all processes have the same information)", with no extra
  agreement round.  Every member therefore derives the *same* new view
  id purely from the set of merged parent views, via a stable hash.
* **restriction** — shrinking a view to the members that survived an
  underlying HWG view change.
* **ancestry tracking** — each member keeps the known ancestor set of
  its current view per LWG, which is how stale view announcements are
  told apart from genuinely concurrent views.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence, Set, Tuple

from ..vsync.view import ProcessId, View, ViewId, merge_member_order

#: Merged-view sequence numbers carry this bit so they can never collide
#: with counter-minted sequence numbers from any process.
_MERGE_SEQ_BIT = 1 << 60


def merged_view_id(lwg: str, parents: Sequence[ViewId]) -> ViewId:
    """Deterministic identifier for the merge of ``parents``.

    Any process knowing the same parent set computes the same id, so the
    Figure-5 merge needs no coordinator round-trip to mint it.  The
    coordinator field is the seniority-first member of the merged view's
    first parent branch — recomputed identically everywhere.
    """
    ordered = tuple(sorted(parents))
    if not ordered:
        raise ValueError("a merged view needs at least one parent")
    digest = hashlib.sha256(
        ("|".join([lwg] + [str(p) for p in ordered])).encode("utf-8")
    ).digest()
    seq = (int.from_bytes(digest[:7], "big")) | _MERGE_SEQ_BIT
    return ViewId(coordinator=ordered[0].coordinator, seq=seq)


def merge_lwg_views(lwg: str, views: Sequence[View]) -> View:
    """Merge concurrent LWG views into one (Figure 5, line 115).

    Member order follows :func:`~repro.vsync.view.merge_member_order`;
    parents are all merged view ids; the view id is derived
    deterministically so every member agrees without communication.
    """
    if not views:
        raise ValueError("nothing to merge")
    if len(views) == 1:
        return views[0]
    parents = tuple(sorted({v.view_id for v in views}))
    members = merge_member_order(views)
    return View(group=lwg, view_id=merged_view_id(lwg, parents), members=members, parents=parents)


def restrict_view(view: View, surviving: Iterable[ProcessId], new_id: ViewId) -> View:
    """A successor of ``view`` containing only ``surviving`` members."""
    members = tuple(m for m in view.members if m in set(surviving))
    if not members:
        raise ValueError(f"restriction of {view} would be empty")
    return View(group=view.group, view_id=new_id, members=members, parents=(view.view_id,))


class AncestorTracker:
    """Known ancestor view ids of a process's current view, per LWG."""

    def __init__(self) -> None:
        self._ancestors: Set[ViewId] = set()

    def advance(self, old: Optional[View], new: View) -> None:
        """Record that ``new`` replaced ``old`` locally."""
        if old is not None:
            self._ancestors.add(old.view_id)
        self._ancestors.update(new.parents)

    def is_stale(self, view_id: ViewId) -> bool:
        """True if ``view_id`` is a view we already moved past."""
        return view_id in self._ancestors

    def concurrent_with_current(self, current: Optional[View], view_id: ViewId) -> bool:
        """True if ``view_id`` denotes a view concurrent with ``current``.

        Stale ids (our own ancestors) are not concurrent; our own current
        id is not concurrent with itself.  Anything else claiming to be a
        live view of the same LWG is treated as concurrent — exactly the
        trigger condition of Figure 5, line 106.
        """
        if current is None or view_id == current.view_id:
            return False
        return not self.is_stale(view_id)
