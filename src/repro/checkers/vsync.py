"""Checkers for the virtually-synchronous HWG substrate (paper Section 5.1).

These monitors consume the ``hwg`` trace events emitted by
:class:`~repro.vsync.hwg.HwgEndpoint` and the per-delivery events from
:class:`~repro.vsync.total_order.OrderedChannel`, plus ``network``
crash/recover events for fail-stop bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..sim.trace import TraceRecord
from .base import Checker

#: (group, view) — views are tracked by their string form ("p0#3").
ViewKey = Tuple[str, str]


class ViewAgreementChecker(Checker):
    """Every member that installs a view agrees on its composition.

    * **view agreement** — a view identifier names exactly one member
      list, at every node that installs it;
    * **self-inclusion** — a process only installs views it belongs to.
    """

    name = "view-agreement"
    categories = ("hwg",)

    def __init__(self) -> None:
        super().__init__()
        self._members: Dict[ViewKey, Tuple[str, ...]] = {}

    def on_record(self, record: TraceRecord) -> None:
        if record.event != "view_installed":
            return
        fields = record.fields
        node, group = fields["node"], fields["group"]
        view = fields["view"]
        members = tuple(fields["members"])
        if node not in members:
            self.fail(
                "self-inclusion",
                f"{node} installed view {view} of {group} without being "
                f"a member ({members})",
                record,
            )
        known = self._members.setdefault((group, view), members)
        if known != members:
            self.fail(
                "view agreement",
                f"view {view} of {group} installed with members {members} "
                f"at {node}, but {known} elsewhere",
                record,
            )


class DeliveryChecker(Checker):
    """Ordering and virtual-synchrony invariants of the data path.

    * **contiguous total order** — each member delivers a view's
      sequence numbers 0, 1, 2, ... without gaps or repeats;
    * **order agreement** — sequence number ``s`` of a view carries the
      same message (sender, sender_seq) at every member;
    * **FIFO per sender** — a member delivers each sender's messages in
      strictly increasing sender-sequence order, across views;
    * **same view, same messages** — members making the same view
      transition delivered the same number of messages in the old view
      (the flush equalised them to the cut);
    * **fail-stop** — a crashed node delivers nothing.
    """

    name = "delivery"
    categories = ("hwg", "network")

    def __init__(self) -> None:
        super().__init__()
        self._crashed: Set[str] = set()
        #: (group, node) -> currently installed view (string form).
        self._current: Dict[Tuple[str, str], str] = {}
        #: (group, node, view) -> next expected seq == messages delivered.
        self._next_seq: Dict[Tuple[str, str, str], int] = {}
        #: (group, view, seq) -> (sender, sender_seq) first observed.
        self._order: Dict[Tuple[str, str, int], Tuple[str, int]] = {}
        #: (group, node, sender) -> highest delivered sender_seq.
        self._fifo: Dict[Tuple[str, str, str], int] = {}
        #: (group, old_view, new_view) -> (first node, old-view delivery count).
        self._transitions: Dict[Tuple[str, str, str], Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        if record.category == "network":
            if record.event == "crash":
                self._on_crash(record.fields["node"])
            elif record.event == "recover":
                self._crashed.discard(record.fields["node"])
            return
        if record.event == "data_delivered":
            self._on_delivery(record)
        elif record.event == "view_installed":
            self._on_view(record)
        elif record.event == "left":
            self._on_left(record.fields["group"], record.fields["node"])

    def _on_crash(self, node: str) -> None:
        # Fail-stop wipes the process: its channels, views and send
        # counters restart from scratch on recovery, so per-node state
        # must not leak across incarnations.
        self._crashed.add(node)
        for key in [k for k in self._current if k[1] == node]:
            del self._current[key]
        for key in [k for k in self._fifo if k[1] == node or k[2] == node]:
            del self._fifo[key]

    def _on_left(self, group: str, node: str) -> None:
        # Leaving a group ends the node's channel incarnation for that
        # group: a rejoin restarts its sender_seq numbering from 1 and
        # starts delivering from a fresh channel, so per-sender memory
        # involving the leaver must not span the leave.
        self._current.pop((group, node), None)
        for key in [
            k for k in self._fifo
            if k[0] == group and (k[1] == node or k[2] == node)
        ]:
            del self._fifo[key]

    def _on_delivery(self, record: TraceRecord) -> None:
        fields = record.fields
        node, group, view = fields["node"], fields["group"], fields["view"]
        seq, sender, sender_seq = fields["seq"], fields["sender"], fields["sender_seq"]
        if node in self._crashed:
            self.fail(
                "fail-stop",
                f"crashed node {node} delivered {group} seq {seq} in view {view}",
                record,
            )
        expected = self._next_seq.get((group, node, view), 0)
        if seq != expected:
            self.fail(
                "contiguous total order",
                f"{node} delivered {group} seq {seq} in view {view}, "
                f"expected seq {expected}",
                record,
            )
        self._next_seq[(group, node, view)] = seq + 1
        payload_id = (sender, sender_seq)
        known = self._order.setdefault((group, view, seq), payload_id)
        if known != payload_id:
            self.fail(
                "order agreement",
                f"{group} view {view} seq {seq} is {payload_id} at {node} "
                f"but {known} elsewhere",
                record,
            )
        last = self._fifo.get((group, node, sender), 0)
        if sender_seq <= last:
            self.fail(
                "FIFO per sender",
                f"{node} delivered {group} message {sender}:{sender_seq} "
                f"after already delivering {sender}:{last}",
                record,
            )
        self._fifo[(group, node, sender)] = sender_seq

    def _on_view(self, record: TraceRecord) -> None:
        fields = record.fields
        node, group, view = fields["node"], fields["group"], fields["view"]
        parents = set(fields.get("parents", ()))
        old = self._current.get((group, node))
        if old is not None and old in parents:
            # Same transition => same delivered prefix in the old view.
            # Members of *different* branches legitimately diverge; they
            # make different (old -> new) transitions and are not compared.
            count = self._next_seq.get((group, node, old), 0)
            first = self._transitions.setdefault((group, old, view), (node, count))
            if first[1] != count:
                self.fail(
                    "same view, same messages",
                    f"transition {old} -> {view} of {group}: {node} delivered "
                    f"{count} messages in {old} but {first[0]} delivered "
                    f"{first[1]}",
                    record,
                )
        self._current[(group, node)] = view
