"""Online safety-invariant checkers for the LWG stack.

The paper's guarantees are safety properties; this package turns every
simulation run into a continuous test of them.  See ``docs/PROTOCOLS.md``
("Checked invariants") for the monitor-by-monitor catalogue.
"""

from .base import Checker, CheckerSuite, InvariantViolation
from .lwg import (
    BatchAccountingChecker,
    LwgAgreementChecker,
    LwgConvergenceChecker,
    MergeRoundChecker,
)
from .naming import GenealogyGcChecker, NamingConvergenceChecker
from .recovery import RecoveryConvergenceChecker
from .vsync import DeliveryChecker, ViewAgreementChecker
from .zones import ZoneScopeChecker

__all__ = [
    "Checker",
    "CheckerSuite",
    "InvariantViolation",
    "ViewAgreementChecker",
    "DeliveryChecker",
    "LwgAgreementChecker",
    "BatchAccountingChecker",
    "MergeRoundChecker",
    "LwgConvergenceChecker",
    "GenealogyGcChecker",
    "NamingConvergenceChecker",
    "RecoveryConvergenceChecker",
    "ZoneScopeChecker",
]
