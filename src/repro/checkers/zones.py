"""Checker for the zoned topology (PROTOCOLS.md §20).

Consumes the ``zones`` trace category (HWG minting, presence relaying)
and, at quiesce, audits the shared :class:`~repro.vsync.zones.ZoneDirectory`
against the failure injector and every live stack's gossip detector.
On flat clusters — no zone directory, no ``zones`` events — the checker
is inert, so it can sit in the standard suite without disturbing any
pre-zoning scenario.
"""

from __future__ import annotations

from ..sim.trace import TraceRecord
from .base import Checker


class ZoneScopeChecker(Checker):
    """Zone-scoped state stays zone-scoped.

    Online invariants (``zones`` events):

    * **Mint locality** — every HWG minted under the zoned topology
      carries the minter's own zone tag (``hwg_minted``).  A mismatch
      means a mapping decision escaped its pool.
    * **Relay forwarding shape** — a forwarded Presence names a foreign
      coordinator and at least one local target (``presence_forwarded``).

    At quiesce (zoned clusters only):

    * **Directory consistency** — every application process is
      registered; its activity bit agrees with the failure injector.
    * **Relay election** — each zone with live members elects its
      lowest-id active member as primary relay.
    * **Bounded tracking** — every live stack's gossip detector tracks
      only peers inside its scope (own zone + relay links + explicitly
      monitored peers): the O(zone) state bound the topology exists for.
    """

    name = "zone-scope"
    categories = ("zones",)

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.event == "hwg_minted":
            from ..core.ids import hwg_zone

            tagged = hwg_zone(fields["hwg"])
            if tagged != fields["zone"]:
                self.fail(
                    "zone-mint-locality",
                    f"node {fields['node']} in zone {fields['zone']} minted "
                    f"{fields['hwg']} tagged for zone {tagged}",
                    record,
                )
        elif record.event == "presence_forwarded":
            if fields["origin"] == fields["node"]:
                self.fail(
                    "zone-relay-forwarding",
                    f"relay {fields['node']} forwarded its own beacon",
                    record,
                )
            if fields["targets"] < 1:
                self.fail(
                    "zone-relay-forwarding",
                    f"relay {fields['node']} forwarded {fields['group']} "
                    "to zero targets",
                    record,
                )

    # ------------------------------------------------------------------
    # Quiescent path
    # ------------------------------------------------------------------
    def at_quiesce(self, cluster) -> None:
        directory = getattr(cluster, "zone_directory", None)
        if directory is None:
            return
        network = cluster.env.network
        for node in cluster.process_ids:
            zone = directory.zone_of(node)
            if zone is None:
                self.fail("zone-directory", f"{node} never registered a zone")
                continue
            alive = network.is_alive(node)
            if directory.is_active(node) != alive:
                self.fail(
                    "zone-directory",
                    f"{node} activity bit {directory.is_active(node)} "
                    f"disagrees with the fabric (alive={alive})",
                )
        for zone in directory.zones():
            active = directory.active_members(zone)
            primary = directory.primary_relay(zone)
            if active and primary != active[0]:
                self.fail(
                    "zone-relay-election",
                    f"zone {zone} primary relay {primary!r} is not its "
                    f"lowest-id active member {active[0]!r}",
                )
        for node in sorted(cluster.stacks):
            stack = cluster.stacks[node]
            agent = getattr(stack, "zones", None)
            if agent is None or not network.is_alive(node):
                continue
            fd = stack.fd
            scope = fd._scope()
            stray = sorted(set(fd._table) - scope)
            if stray:
                self.fail(
                    "zone-bounded-tracking",
                    f"{node} tracks out-of-scope peers {stray}",
                )
