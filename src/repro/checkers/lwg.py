"""Checkers for the light-weight group layer (paper Sections 3-4 and 6).

These monitors consume the ``lwg`` trace events emitted by
:class:`~repro.core.service.LwgService` and
:class:`~repro.core.merge.MergeManager`, plus ``hwg``/``network``
events for flush-point and fail-stop bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..sim.trace import TraceRecord
from .base import Checker


class LwgAgreementChecker(Checker):
    """View composition and delivery membership at the LWG layer.

    * **LWG view agreement** — an LWG view identifier names one member
      list everywhere it installs, and installers belong to it;
    * **member-only delivery** — LWG data tagged with a view is only
      delivered at members of that view.
    """

    name = "lwg-agreement"
    categories = ("lwg",)

    def __init__(self) -> None:
        super().__init__()
        self._members: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.event == "lwg_view_installed":
            node, lwg, view = fields["node"], fields["lwg"], fields["view"]
            members = tuple(fields["members"])
            if node not in members:
                self.fail(
                    "LWG self-inclusion",
                    f"{node} installed LWG view {view} of {lwg} without "
                    f"being a member ({members})",
                    record,
                )
            known = self._members.setdefault((lwg, view), members)
            if known != members:
                self.fail(
                    "LWG view agreement",
                    f"LWG view {view} of {lwg} installed with members "
                    f"{members} at {node}, but {known} elsewhere",
                    record,
                )
        elif record.event == "lwg_data_delivered":
            node, lwg, view = fields["node"], fields["lwg"], fields["view"]
            sender = fields["sender"]
            members = self._members.get((lwg, view)) if view else None
            if members is None:
                return
            if node not in members:
                self.fail(
                    "member-only delivery",
                    f"{node} delivered {lwg} data in view {view} without "
                    f"being a member ({members})",
                    record,
                )
            if sender not in members:
                self.fail(
                    "member-only delivery",
                    f"{node} delivered {lwg} data from non-member {sender} "
                    f"in view {view} ({members})",
                    record,
                )


class MergeRoundChecker(Checker):
    """At most one Figure-5 merge round per HWG at a time, per node.

    A node that multicasts MERGE-VIEWS on an HWG must not open a second
    round before the first closes — either at the flush point (the HWG
    view installation) or through the explicit retry reset.  Concurrent
    rounds would double-count ALL-VIEWS answers and defeat the
    one-flush-per-reconciliation amortisation claim.
    """

    name = "merge-round"
    categories = ("lwg", "hwg", "network")

    def __init__(self) -> None:
        super().__init__()
        #: (node, hwg) -> triggering lwg of the open round.
        self._open: Dict[Tuple[str, str], str] = {}

    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.category == "network":
            if record.event == "crash":
                node = fields["node"]
                for key in [k for k in self._open if k[0] == node]:
                    del self._open[key]
            return
        if record.category == "hwg":
            if record.event == "view_installed":
                # The flush point: MergeManager.on_hwg_view resets the
                # round state for this HWG right after this event.
                self._open.pop((fields["node"], fields["group"]), None)
            return
        if record.event == "merge_views_triggered":
            key = (fields["node"], fields["hwg"])
            if key in self._open:
                self.fail(
                    "one merge round per HWG",
                    f"{fields['node']} triggered a merge round on "
                    f"{fields['hwg']} (for {fields['lwg']}) while the round "
                    f"for {self._open[key]} is still running",
                    record,
                )
            self._open[key] = fields["lwg"]
        elif record.event in ("merge_round_retry", "merge_round_completed"):
            self._open.pop((fields["node"], fields["hwg"]), None)


class BatchAccountingChecker(Checker):
    """Batch-aware delivery accounting (PROTOCOLS.md §15).

    The packer coalesces LWG DATA payloads into one HWG multicast; the
    receiver demultiplexes them.  Two bookkeeping properties keep the
    batched data path equivalent to the unbatched one:

    * **count agreement** — a batch is unpacked with exactly as many
      entries as it was sent with (identified by ``(sender,
      batch_seq)``), and with the same per-LWG entry breakdown — a
      mixed-LWG batch must not be mistaken for single-group traffic;
    * **at-most-once unpack** — no node unpacks the same batch twice
      (the HWG ordered channel dedups, so a double unpack would mean
      duplicated delivery of every entry).
    """

    name = "batch-accounting"
    categories = ("lwg",)

    def __init__(self) -> None:
        super().__init__()
        #: (sender, batch_seq) -> (entry count, per-LWG counts) at send time.
        self._sent: Dict[Tuple[str, int], Tuple[int, Dict[str, int]]] = {}
        #: (node, sender, batch_seq) already unpacked.
        self._unpacked: Set[Tuple[str, str, int]] = set()

    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.event == "batch_sent":
            self._sent[(fields["node"], fields["batch_seq"])] = (
                fields["entries"],
                dict(fields.get("lwgs", {})),
            )
        elif record.event == "batch_unpacked":
            node, sender = fields["node"], fields["sender"]
            batch_seq, entries = fields["batch_seq"], fields["entries"]
            sent = self._sent.get((sender, batch_seq))
            if sent is not None and sent[0] != entries:
                self.fail(
                    "batch count agreement",
                    f"{node} unpacked batch {sender}#{batch_seq} with "
                    f"{entries} entries, but it was sent with {sent[0]}",
                    record,
                )
            lwgs = dict(fields.get("lwgs", {}))
            if sent is not None and sent[1] != lwgs:
                self.fail(
                    "batch per-LWG count agreement",
                    f"{node} unpacked batch {sender}#{batch_seq} with "
                    f"per-LWG counts {lwgs}, but it was sent with {sent[1]}",
                    record,
                )
            key = (node, sender, batch_seq)
            if key in self._unpacked:
                self.fail(
                    "at-most-once unpack",
                    f"{node} unpacked batch {sender}#{batch_seq} twice",
                    record,
                )
            self._unpacked.add(key)


class LwgConvergenceChecker(Checker):
    """At quiesce, every LWG has exactly one view on one HWG.

    The Section-6 pipeline promises that concurrent-view sets detected
    via MULTIPLE-MAPPINGS or local peer discovery converge: once a run
    settles, all members of an LWG must hold the same view, mapped onto
    the same HWG, and the view's member list must be exactly the set of
    processes claiming membership.
    """

    name = "lwg-convergence"

    def at_quiesce(self, cluster) -> None:
        network = cluster.env.fabric
        claims: Dict[str, List[Tuple[str, object, object]]] = {}
        for node, service in cluster.services.items():
            table = getattr(service, "table", None)
            if table is None or not network.is_alive(node):
                continue
            for local in table.locals.values():
                if local.is_member and local.view is not None:
                    claims.setdefault(local.lwg, []).append(
                        (node, local.view, local.hwg)
                    )
        for lwg, entries in sorted(claims.items()):
            ids = {str(view.view_id) for _, view, _ in entries}
            if len(ids) != 1:
                self.fail(
                    "concurrent views converge",
                    f"{lwg} still has concurrent views at quiesce: "
                    f"{sorted((n, str(v.view_id)) for n, v, _ in entries)}",
                )
            hwgs = {hwg for _, _, hwg in entries}
            if len(hwgs) != 1:
                self.fail(
                    "single HWG mapping",
                    f"{lwg} is mapped onto several HWGs at quiesce: "
                    f"{sorted((n, h) for n, _, h in entries)}",
                )
            members = set(entries[0][1].members)
            claimers = {node for node, _, _ in entries}
            if members != claimers:
                self.fail(
                    "membership matches view",
                    f"{lwg} view {entries[0][1].view_id} lists members "
                    f"{sorted(members)} but {sorted(claimers)} claim "
                    f"membership",
                )
