"""Checkers for crash recovery and self-healing from corrupted state.

These monitors consume the ``recovery`` trace events emitted by the
durable-state machinery — ``stack_recovered`` / ``server_recovered``
from the restart paths and ``store_corrupted`` from the fuzzer's
corruption injector — and, at quiesce, audit every live name server's
durable store against its in-memory replica.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.trace import TraceRecord
from .base import Checker


class RecoveryConvergenceChecker(Checker):
    """Recovered nodes converge; corrupted state heals, never spreads.

    Online invariants:

    * **Incarnation monotonicity** — every recovery event for a node
      must carry a strictly larger incarnation than the node's previous
      one.  A node that restarts *without* bumping is indistinguishable
      from its dead previous life: its stale segments, acks and
      InstallViews would be accepted as current.
    * **Corruption is always reloaded** — a ``store_corrupted`` injection
      must be followed by a recovery of that node (the fuzz step is
      atomic, so a missing reload means the recovery path silently
      skipped the corrupted store).

    At quiesce:

    * **Durable completeness** — re-loading each live server's
      snapshot+log yields a database byte-identical (content hash) to a
      fully-collected clone of the live one, and the reload is *clean*
      (any corruption was rewritten away by the post-recovery snapshot).
    * **Structural integrity** — the live database's derived structures
      (per-LWG index, Merkle tree, hash caches) agree with its records.

    Convergence of the *replicas* with each other — byte-identical
    databases, agreed views, no resurrected tombstones or dedup-floor
    regressions — is asserted by the standard naming/vsync/LWG checkers,
    which stay armed during every recovery schedule; this checker adds
    the recovery-specific obligations on top.
    """

    name = "recovery-convergence"
    categories = ("recovery",)

    def __init__(self) -> None:
        super().__init__()
        #: node -> highest incarnation observed in a recovery event.
        self._incarnations: Dict[str, int] = {}
        #: node -> (mode, injection time) of a not-yet-reloaded corruption.
        self._pending_corruption: Dict[str, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.event in ("server_recovered", "stack_recovered"):
            node = fields.get("server") or fields["node"]
            incarnation = fields["incarnation"]
            previous = self._incarnations.get(node, 0)
            if incarnation <= previous:
                self.fail(
                    "incarnation bump",
                    f"{node} recovered with incarnation {incarnation}, not "
                    f"above its previous life {previous} — its stale traffic "
                    f"is indistinguishable from the new one",
                    record,
                )
            self._incarnations[node] = incarnation
            if record.event == "server_recovered":
                self._pending_corruption.pop(node, None)
        elif record.event == "store_corrupted":
            self._pending_corruption[fields["node"]] = (
                fields["mode"],
                record.time,
            )

    # ------------------------------------------------------------------
    # At-quiesce path
    # ------------------------------------------------------------------
    def at_quiesce(self, cluster) -> None:
        if self._pending_corruption:
            detail = {
                node: mode
                for node, (mode, _) in sorted(self._pending_corruption.items())
            }
            self.fail(
                "corruption reloaded",
                f"injected corruption was never loaded back: {detail}",
            )
        network = cluster.env.fabric
        for node, server in sorted(cluster.name_servers.items()):
            if not network.is_alive(node):
                continue
            problems = server.db.verify_integrity()
            if problems:
                self.fail(
                    "database integrity",
                    f"server {node} database is internally inconsistent at "
                    f"quiesce: {problems}",
                )
            store = getattr(server, "store", None)
            if store is None:
                continue
            # Sharded servers reload only their owned shards, exactly as
            # the recovery path does (foreign journal entries contribute
            # genealogy only — see persistence.load).
            result = store.load(owned=getattr(server, "owned", None))
            if not result.clean:
                self.fail(
                    "durable state clean",
                    f"server {node} durable store is damaged at quiesce "
                    f"({result.describe()}) — recovery did not rewrite it",
                )
            # The durable fixed point must match the live one.  The live
            # database is only *incrementally* collected, so compare
            # fully-collected clones (GC is confluent: the fully-swept
            # record set is a function of applied records + genealogy).
            live = server.db.clone()
            live.garbage_collect()
            if result.db.content_hash() != live.content_hash():
                self.fail(
                    "durable completeness",
                    f"server {node} snapshot+log reloads to a different "
                    f"database than the live replica "
                    f"(durable {result.db.content_hash()[:12]} != "
                    f"live {live.content_hash()[:12]}) — a crash here would "
                    f"lose or invent state",
                )
