"""Checkers for the replicated naming service (paper Section 5.2).

These monitors consume the ``naming`` trace events emitted by
:class:`~repro.naming.server.NameServer` (and, through its hooks,
:class:`~repro.naming.database.NamingDatabase`).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..sim.trace import TraceRecord
from .base import Checker


class GenealogyGcChecker(Checker):
    """Garbage collection respects the view genealogy partial order.

    A mapping record may only be collected because its LWG view is a
    *strict ancestor* of another recorded view of the same LWG (Tables
    3-4: "the naming service must be aware of the partial order of
    views").  Collecting a view that is concurrent with — or newer than
    — its witness would discard a live mapping.

    The checker mirrors the genealogy DAG from ``genealogy_edge`` events
    (which every server emits before applying records or collecting) and
    re-validates every ``record_gc`` against it.
    """

    name = "genealogy-gc"
    categories = ("naming",)

    def __init__(self) -> None:
        super().__init__()
        self._parents: Dict[str, Set[str]] = {}

    def _is_ancestor(self, older: str, newer: str) -> bool:
        stack = list(self._parents.get(newer, ()))
        visited: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == older:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._parents.get(current, ()))
        return False

    def on_record(self, record: TraceRecord) -> None:
        fields = record.fields
        if record.event == "genealogy_edge":
            self._parents.setdefault(fields["child"], set()).update(
                fields["parents"]
            )
        elif record.event == "record_gc":
            view, witness = fields["view"], fields["witness"]
            if view == witness or not self._is_ancestor(view, witness):
                self.fail(
                    "genealogy-ordered GC",
                    f"server {fields['server']} collected the mapping of "
                    f"{fields['lwg']} view {view} citing witness {witness}, "
                    f"which is not a strict descendant",
                    record,
                )


class NamingConvergenceChecker(Checker):
    """At quiesce, the naming replicas agree and hold no conflicts.

    After reconciliation (eager push + anti-entropy across the healed
    partition), every reachable server must store the same live mapping
    per LWG, and no server may still see "inconsistent mappings" —
    concurrent views of one LWG on different HWGs (Section 5.2).

    Under a sharded deployment (PROTOCOLS.md §18) whole-database
    equality is the wrong invariant — servers deliberately hold
    different shards — so the check becomes shard-by-shard: the alive
    owners of each shard must agree byte-for-byte on that Merkle
    subtree, and no server may hold records of shards it does not own.
    """

    name = "naming-convergence"

    def at_quiesce(self, cluster) -> None:
        shard_map = getattr(cluster, "shard_map", None)
        if shard_map is not None and not shard_map.fully_replicated:
            self._check_sharded(cluster, shard_map)
            return
        network = cluster.env.fabric
        servers = [
            server
            for node, server in sorted(cluster.name_servers.items())
            if network.is_alive(node)
        ]
        if not servers:
            return
        reference = None
        for server in servers:
            snapshot = {
                lwg: tuple(
                    (str(r.lwg_view), r.hwg) for r in server.db.live_records(lwg)
                )
                for lwg in server.db.lwgs()
            }
            if reference is None:
                reference = (server.node, snapshot)
            elif snapshot != reference[1]:
                diff = {
                    lwg: (reference[1].get(lwg), snapshot.get(lwg))
                    for lwg in set(reference[1]) | set(snapshot)
                    if reference[1].get(lwg) != snapshot.get(lwg)
                }
                self.fail(
                    "replica agreement",
                    f"naming tables diverge after reconciliation: "
                    f"{reference[0]} vs {server.node} differ on {diff}",
                )
        for server in servers:
            conflicts = server.db.conflicts()
            if conflicts:
                detail = {
                    lwg: [(str(r.lwg_view), r.hwg) for r in records]
                    for lwg, records in conflicts.items()
                }
                self.fail(
                    "mappings reconciled",
                    f"server {server.node} still holds multiple mappings at "
                    f"quiesce: {detail}",
                )
        # Delta-based anti-entropy must reach the *byte-identical* fixed
        # point (tombstones and genealogy included) — that is what lets
        # steady-state exchanges short-circuit on the database hash.
        hashes = {server.node: server.db.content_hash() for server in servers}
        if len(set(hashes.values())) > 1:
            self.fail(
                "byte-identical replicas",
                f"replica content hashes still diverge at quiesce: {hashes}",
            )

    # ------------------------------------------------------------------
    # Sharded deployments (PROTOCOLS.md §18)
    # ------------------------------------------------------------------
    def _check_sharded(self, cluster, shard_map) -> None:
        from ..naming.sharding import shard_of_lwg

        network = cluster.env.fabric
        servers = {
            node: server
            for node, server in sorted(cluster.name_servers.items())
            if network.is_alive(node)
        }
        if not servers:
            return
        # Containment: a server must never retain records of foreign
        # shards (forwarded requests and scoped sessions filter them).
        for node, server in servers.items():
            owned = server.owned or frozenset()
            foreign = sorted(
                {
                    shard_of_lwg(lwg)
                    for lwg in server.db.lwgs()
                    if shard_of_lwg(lwg) not in owned
                }
            )
            if foreign:
                self.fail(
                    "shard containment",
                    f"server {node} holds records of shards it does not "
                    f"own: {foreign}",
                )
        # Per-shard agreement: the alive owners of every shard must hold
        # byte-identical subtrees (records *and* tombstones) — the fixed
        # point at which scoped anti-entropy short-circuits.
        for shard in shard_map.shards:
            alive_owners = [
                servers[node] for node in shard_map.owners(shard) if node in servers
            ]
            if len(alive_owners) < 2:
                continue
            hashes = {
                server.node: server.db.merkle.node_hash(shard)
                for server in alive_owners
            }
            if len(set(hashes.values())) > 1:
                snapshots = {
                    server.node: {
                        lwg: tuple(
                            (str(r.lwg_view), r.hwg)
                            for r in server.db.live_records(lwg)
                        )
                        for lwg in server.db.lwgs()
                        if shard_of_lwg(lwg) == shard
                    }
                    for server in alive_owners
                }
                self.fail(
                    "per-shard replica agreement",
                    f"owners of shard {shard} diverge at quiesce: "
                    f"{hashes}; live records: {snapshots}",
                )
        for server in servers.values():
            conflicts = server.db.conflicts()
            if conflicts:
                detail = {
                    lwg: [(str(r.lwg_view), r.hwg) for r in records]
                    for lwg, records in conflicts.items()
                }
                self.fail(
                    "mappings reconciled",
                    f"server {server.node} still holds multiple mappings at "
                    f"quiesce: {detail}",
                )
