"""Infrastructure for online safety-invariant monitors.

Following the sanitizer / race-detector pattern, a :class:`CheckerSuite`
subscribes to the simulation's :class:`~repro.sim.trace.Tracer` and fans
every record out to a set of :class:`Checker`\\ s, each encoding one of
the paper's safety properties.  The moment a run violates an invariant,
a structured :class:`InvariantViolation` is raised *inside* the event
that broke it — the traceback points at the guilty protocol step, not at
a failed assertion minutes later.

Checkers observe the system exclusively through trace events (which fire
even when record keeping is off, so soaks and benchmarks stay cheap) and
through the optional at-quiesce inspection hook, which may look at real
component state once a run has settled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.trace import TraceRecord, Tracer


class InvariantViolation(AssertionError):
    """A checked safety property does not hold.

    Derives from AssertionError so pytest renders it as a test failure
    with full context rather than an infrastructure error.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        time: Optional[int] = None,
        record: Optional[TraceRecord] = None,
    ):
        self.invariant = invariant
        self.detail = detail
        self.time = time
        self.record = record
        stamp = f"[{time}us] " if time is not None else ""
        super().__init__(f"{stamp}invariant '{invariant}' violated: {detail}")


class Checker:
    """Base class for one invariant monitor.

    Subclasses set ``categories`` to the trace categories they consume
    (empty means every record) and implement :meth:`on_record`; monitors
    of quiescent-state properties implement :meth:`at_quiesce` instead
    (or additionally), which receives the cluster once a scenario has
    settled.
    """

    name = "checker"
    categories: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.suite: Optional["CheckerSuite"] = None

    def on_record(self, record: TraceRecord) -> None:
        """Observe one trace record (online path)."""

    def at_quiesce(self, cluster) -> None:
        """Inspect settled component state (final-check path)."""

    def fail(
        self,
        invariant: str,
        detail: str,
        record: Optional[TraceRecord] = None,
    ) -> None:
        violation = InvariantViolation(
            invariant,
            detail,
            time=record.time if record is not None else None,
            record=record,
        )
        assert self.suite is not None
        self.suite.report(violation)


class CheckerSuite:
    """Owns a set of checkers and routes trace records to them.

    ``raise_immediately`` (the default) turns any violation into an
    exception at the emitting event; with it off, violations accumulate
    in :attr:`violations` for batch inspection (useful in checker tests
    and post-mortem tooling).
    """

    def __init__(self, raise_immediately: bool = True):
        self.raise_immediately = raise_immediately
        self.violations: List[InvariantViolation] = []
        self.checkers: List[Checker] = []
        self._wildcard: List[Checker] = []
        self._by_category: Dict[str, List[Checker]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def standard(cls, raise_immediately: bool = True) -> "CheckerSuite":
        """A suite with every stock checker registered."""
        from .lwg import (
            BatchAccountingChecker,
            LwgAgreementChecker,
            LwgConvergenceChecker,
            MergeRoundChecker,
        )
        from .naming import GenealogyGcChecker, NamingConvergenceChecker
        from .recovery import RecoveryConvergenceChecker
        from .vsync import DeliveryChecker, ViewAgreementChecker
        from .zones import ZoneScopeChecker

        suite = cls(raise_immediately=raise_immediately)
        suite.add(ViewAgreementChecker())
        suite.add(DeliveryChecker())
        suite.add(LwgAgreementChecker())
        suite.add(BatchAccountingChecker())
        suite.add(MergeRoundChecker())
        suite.add(GenealogyGcChecker())
        suite.add(NamingConvergenceChecker())
        suite.add(LwgConvergenceChecker())
        suite.add(RecoveryConvergenceChecker())
        suite.add(ZoneScopeChecker())
        return suite

    def add(self, checker: Checker) -> Checker:
        checker.suite = self
        self.checkers.append(checker)
        if checker.categories:
            for category in checker.categories:
                self._by_category.setdefault(category, []).append(checker)
        else:
            self._wildcard.append(checker)
        return checker

    def attach(self, tracer: Tracer) -> "CheckerSuite":
        """Subscribe to ``tracer`` so every relevant record is checked.

        When every registered checker declares its categories, the suite
        subscribes only to their union — categories no checker watches
        stay on the tracer's no-listener fast path.  A single wildcard
        checker forces a wildcard subscription.
        """
        if self._wildcard or not self.checkers:
            tracer.subscribe(self.on_record)
        else:
            wanted = sorted(self._by_category)
            tracer.subscribe(self.on_record, categories=wanted)
        return self

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        for checker in self._wildcard:
            checker.on_record(record)
        for checker in self._by_category.get(record.category, ()):
            checker.on_record(record)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)
        if self.raise_immediately:
            raise violation

    def check_quiescent(self, cluster) -> None:
        """Run every checker's at-quiesce inspection against ``cluster``."""
        for checker in self.checkers:
            checker.at_quiesce(cluster)

    def assert_clean(self) -> None:
        """Raise the first recorded violation, if any."""
        if self.violations:
            raise self.violations[0]

    def summary(self) -> str:
        if not self.violations:
            return "checkers: clean"
        lines = [f"checkers: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)
