"""``python -m repro bench`` — run the suite, snapshot, gate on a baseline.

Usage::

    python -m repro bench      # full suite, snapshot under benchmarks/snapshots/
    python -m repro bench --fast                # CI subset
    python -m repro bench --fast --check-against benchmarks/baseline.json
    python -m repro bench --update-baseline benchmarks/baseline.json

Exit code is 0 unless ``--check-against`` finds a regression past the
threshold.  Wall-clock numbers vary across machines; the committed
baseline records the reference machine in its header, and the threshold
is configurable for noisier environments.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional

from .compare import DEFAULT_THRESHOLD, compare_results, load_baseline
from .suite import SUITE, BenchResult, run_benchmark

DEFAULT_SEED = 2000  # matches benchmarks/conftest.py SEED


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="headless benchmark suite with baseline regression gating",
    )
    parser.add_argument(
        "--fast", action="store_true", help="run only the fast (CI) subset"
    )
    parser.add_argument(
        "--filter", metavar="SUBSTR", help="run only benchmarks whose name contains this"
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="workload seed (deterministic)"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timed runs per benchmark (best kept)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks/snapshots"),
        help="directory for the BENCH_<timestamp>.json snapshot",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the snapshot file"
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        metavar="BASELINE",
        help="compare events/sec against this baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression threshold as a fraction (default 0.15)",
    )
    parser.add_argument(
        "--update-baseline",
        type=Path,
        metavar="PATH",
        help="write this run's numbers as the new baseline and exit",
    )
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    return parser


def _snapshot(results: List[BenchResult], seed: int) -> dict:
    return {
        "schema": 1,
        "kind": "repro-bench",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": seed,
        "results": {r.name: r.to_json() for r in results},
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    specs = list(SUITE)
    if args.fast:
        specs = [s for s in specs if s.fast]
    if args.filter:
        specs = [s for s in specs if args.filter in s.name]
    if args.list:
        for spec in specs:
            tag = "fast" if spec.fast else "slow"
            print(f"  {spec.name:26s} [{tag}] {spec.description}")
        return 0
    if not specs:
        print("bench: no benchmarks match", file=sys.stderr)
        return 1

    results: List[BenchResult] = []
    for spec in specs:
        result = run_benchmark(spec, seed=args.seed, repeat=args.repeat)
        results.append(result)
        print(
            f"[bench] {result.name:26s} {result.events_per_sec:12.0f} ev/s  "
            f"({result.events} events in {result.wall_s:.3f}s)"
        )

    snapshot = _snapshot(results, args.seed)

    if args.update_baseline:
        args.update_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.update_baseline.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"bench: baseline updated -> {args.update_baseline}")
        return 0

    if not args.no_write:
        args.out.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        out_path = args.out / f"BENCH_{stamp}.json"
        out_path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"bench: snapshot -> {out_path}")

    if args.check_against:
        baseline = load_baseline(args.check_against)
        compared = compare_results(results, baseline, threshold=args.threshold)
        print(f"bench: comparing against {args.check_against} (threshold {args.threshold:.0%})")
        for line in compared.lines:
            print(line)
        if not compared.ok:
            print(
                f"bench: {len(compared.regressions)} regression(s): "
                + ", ".join(compared.regressions),
                file=sys.stderr,
            )
            return 1
        print("bench: no regressions")
    return 0
