"""Headless benchmark harness: the tracked perf trajectory of the repo.

``python -m repro bench`` runs the suite in :mod:`repro.bench.suite`,
writes a ``BENCH_<timestamp>.json`` snapshot at the output directory and
optionally compares events/sec against a committed baseline
(``benchmarks/baseline.json``), failing on regressions past a threshold.

See ``docs/PERFORMANCE.md`` for the hot paths the suite pins down and
the procedure for refreshing the baseline.
"""

from .suite import BenchResult, BenchSpec, SUITE, run_benchmark
from .compare import CompareResult, compare_results, load_baseline

__all__ = [
    "BenchResult",
    "BenchSpec",
    "CompareResult",
    "SUITE",
    "compare_results",
    "load_baseline",
    "run_benchmark",
]
