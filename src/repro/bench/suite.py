"""The benchmark suite: deterministic workloads timed with a wall clock.

Each benchmark is a pure function ``(seed) -> (events, extra)`` where
``events`` is the unit count the events/sec figure is computed from and
``extra`` carries workload-specific counters (messages delivered, sim
time).  The harness times the function, repeats it, and keeps the best
run — wall time is the only non-deterministic quantity; every workload
replays the exact same event sequence for a given seed.

The workload shapes deliberately mirror the pytest-benchmark files under
``benchmarks/`` (``bench_engine.py``, ``bench_fabric.py``) so the two
views of performance — interactive pytest runs and the CI-gated
trajectory — measure the same hot paths:

* ``engine.chain`` — per-event cost of the discrete-event loop;
* ``engine.timer_heap`` — heap push/pop cost with a deep queue;
* ``fabric.multicast_fanout`` — ``Network.multicast`` to a wide,
  repeated destination set (the LWG stack's dominant call shape);
* ``fabric.unicast_storm`` — ``Network.send`` point-to-point traffic;
* ``tracer.gated_emit`` — emit cost when nobody listens to a category;
* ``cluster.steady_traffic`` — end-to-end ordered delivery through the
  full LWG stack (checkers off, records off: the perf configuration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..runtime.rng import RngRegistry
from ..runtime.trace import Tracer
from ..sim.engine import MS, SECOND, Simulation
from ..sim.network import LinkModel, Network

BenchFn = Callable[[int], Tuple[int, Dict[str, Any]]]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark."""

    name: str
    fn: BenchFn
    fast: bool
    description: str


@dataclass
class BenchResult:
    """Timed outcome of one benchmark (best of ``repeat`` runs)."""

    name: str
    events: int
    wall_s: float
    events_per_sec: float
    seed: int
    repeat: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "seed": self.seed,
            "repeat": self.repeat,
            **{k: v for k, v in sorted(self.extra.items())},
        }


SUITE: List[BenchSpec] = []


def _register(name: str, fast: bool, description: str) -> Callable[[BenchFn], BenchFn]:
    def deco(fn: BenchFn) -> BenchFn:
        SUITE.append(BenchSpec(name=name, fn=fn, fast=fast, description=description))
        return fn

    return deco


def run_benchmark(spec: BenchSpec, seed: int = 2000, repeat: int = 3) -> BenchResult:
    """Run ``spec`` ``repeat`` times and keep the fastest wall time."""
    best_wall = float("inf")
    events = 0
    extra: Dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        events, extra = spec.fn(seed)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
    best_wall = max(best_wall, 1e-9)
    return BenchResult(
        name=spec.name,
        events=events,
        wall_s=best_wall,
        events_per_sec=events / best_wall,
        seed=seed,
        repeat=max(1, repeat),
        extra=extra,
    )


# ----------------------------------------------------------------------
# Engine benchmarks (mirror benchmarks/bench_engine.py)
# ----------------------------------------------------------------------
CHAIN_EVENTS = 20_000


def chain_workload(sim: Simulation, n_events: int) -> None:
    """Each event schedules its successor: a pure event-loop workload."""
    remaining = [n_events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(MS, tick)

    sim.schedule(MS, tick)
    sim.run_until(n_events * 2 * MS)
    assert remaining[0] == 0


@_register("engine.chain", fast=True, description="per-event cost of run_until")
def bench_engine_chain(seed: int) -> Tuple[int, Dict[str, Any]]:
    sim = Simulation()
    chain_workload(sim, CHAIN_EVENTS)
    return CHAIN_EVENTS, {"sim_time_us": sim.now}


TIMER_HEAP_EVENTS = 30_000


def timer_heap_workload(sim: Simulation, n_events: int) -> None:
    """Schedule a deep, shuffled timer heap up front, then drain it."""
    for i in range(n_events):
        # Deterministic pseudo-shuffle keeps push order != pop order, so
        # every push/pop pays real sift comparisons.
        sim.schedule(1 + (i * 7919) % n_events, lambda: None)
    sim.run()


@_register("engine.timer_heap", fast=True, description="deep-heap push/pop cost")
def bench_engine_timer_heap(seed: int) -> Tuple[int, Dict[str, Any]]:
    sim = Simulation()
    timer_heap_workload(sim, TIMER_HEAP_EVENTS)
    return TIMER_HEAP_EVENTS, {"sim_time_us": sim.now}


# ----------------------------------------------------------------------
# Fabric benchmarks (mirror benchmarks/bench_fabric.py)
# ----------------------------------------------------------------------
FANOUT_NODES = 24
FANOUT_ROUNDS = 1_500


def multicast_fanout_workload(
    seed: int, nodes: int = FANOUT_NODES, rounds: int = FANOUT_ROUNDS
) -> Network:
    """One sender multicasts to the same wide destination set repeatedly.

    This is the LWG stack's dominant fabric call shape: ``Ordered`` /
    beacon traffic to a stable view membership.
    """
    sim = Simulation()
    net = Network(
        sim, RngRegistry(seed), link=LinkModel(jitter_us=0), shared_medium=False
    )
    sink = lambda src, payload, size: None  # noqa: E731
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        net.attach(name, sink)
    dsts = set(names[1:])

    def blast() -> None:
        if net.messages_sent < rounds:
            net.multicast("n0", dsts, payload="m", size=256)
            sim.schedule(MS, blast)

    sim.schedule(0, blast)
    sim.run()
    return net


@_register(
    "fabric.multicast_fanout", fast=True, description="wide repeated multicast"
)
def bench_fabric_multicast(seed: int) -> Tuple[int, Dict[str, Any]]:
    net = multicast_fanout_workload(seed)
    return net.messages_delivered, {
        "messages_delivered": net.messages_delivered,
        "messages_sent": net.messages_sent,
    }


STORM_PAIRS = 8
STORM_MESSAGES = 12_000


def unicast_storm_workload(
    seed: int, pairs: int = STORM_PAIRS, messages: int = STORM_MESSAGES
) -> Network:
    """Point-to-point sends round-robining over several node pairs."""
    sim = Simulation()
    net = Network(
        sim, RngRegistry(seed), link=LinkModel(jitter_us=0), shared_medium=False
    )
    sink = lambda src, payload, size: None  # noqa: E731
    for i in range(pairs):
        net.attach(f"a{i}", sink)
        net.attach(f"b{i}", sink)

    sent = [0]

    def blast() -> None:
        if sent[0] < messages:
            i = sent[0] % pairs
            net.send(f"a{i}", f"b{i}", payload="m", size=256)
            sent[0] += 1
            sim.schedule(100, blast)

    sim.schedule(0, blast)
    sim.run()
    return net


@_register("fabric.unicast_storm", fast=True, description="point-to-point sends")
def bench_fabric_unicast(seed: int) -> Tuple[int, Dict[str, Any]]:
    net = unicast_storm_workload(seed)
    return net.messages_delivered, {
        "messages_delivered": net.messages_delivered,
        "messages_sent": net.messages_sent,
    }


# ----------------------------------------------------------------------
# Tracer benchmark
# ----------------------------------------------------------------------
TRACE_EMITS = 60_000


def gated_emit_workload(n_emits: int = TRACE_EMITS) -> Tracer:
    """Emit into a category nobody records or listens to.

    With ``keep_records=False`` and a listener on a *different* category
    this is the benchmark/soak configuration: the hot layers' events
    must cost as close to nothing as the API allows.
    """
    tracer = Tracer(clock=lambda: 0, keep_records=False)
    seen = []
    try:
        tracer.subscribe(seen.append, categories=("network",))
    except TypeError:  # pre-category-subscription Tracer
        tracer.subscribe(
            lambda record: seen.append(record) if record.category == "network" else None
        )
    enabled = getattr(tracer, "enabled", None)
    for i in range(n_emits):
        if enabled is None or enabled("hwg"):
            tracer.emit("hwg", "data_delivered", node="p0", seq=i, sender="p1")
    assert not seen
    return tracer


@_register("tracer.gated_emit", fast=True, description="emit with no audience")
def bench_tracer_gated(seed: int) -> Tuple[int, Dict[str, Any]]:
    gated_emit_workload()
    return TRACE_EMITS, {}


# ----------------------------------------------------------------------
# End-to-end cluster benchmark
# ----------------------------------------------------------------------
TRAFFIC_PROCESSES = 6
TRAFFIC_BURSTS = 40
TRAFFIC_BURST_SIZE = 5


def steady_traffic_workload(
    seed: int,
    processes: int = TRAFFIC_PROCESSES,
    bursts: int = TRAFFIC_BURSTS,
    burst_size: int = TRAFFIC_BURST_SIZE,
):
    """Ordered traffic through the full LWG stack, perf configuration.

    Checkers and record keeping are off — the documented setup for
    timing-sensitive runs — so the tracer's category gating and the
    fabric fast paths both sit on the measured path.
    """
    from ..workloads.cluster import Cluster

    cluster = Cluster(
        num_processes=processes, seed=seed, keep_trace=False, checkers=False
    )
    group = "bench"
    for node in cluster.process_ids:
        cluster.services[node].join(group)
    cluster.run_for(8 * SECOND)
    for burst in range(bursts):
        for node in cluster.process_ids:
            for k in range(burst_size):
                cluster.services[node].send(group, f"m:{burst}:{k}")
        cluster.run_for(SECOND // 2)
    cluster.run_for(2 * SECOND)
    return cluster


@_register(
    "cluster.steady_traffic", fast=False, description="end-to-end ordered delivery"
)
def bench_cluster_traffic(seed: int) -> Tuple[int, Dict[str, Any]]:
    cluster = steady_traffic_workload(seed)
    delivered = cluster.env.network.messages_delivered
    return delivered, {
        "messages_delivered": delivered,
        "messages_sent": cluster.env.network.messages_sent,
        "sim_time_us": cluster.env.now,
    }


# ----------------------------------------------------------------------
# Co-mapped LWG traffic: the batching win
# ----------------------------------------------------------------------
COMAPPED_PROCESSES = 4
COMAPPED_GROUPS = 6
COMAPPED_BURSTS = 25
COMAPPED_BURST_SIZE = 4


def comapped_traffic_workload(seed: int, enable_batching: bool):
    """Several LWGs statically co-mapped on ONE shared HWG, all chatty.

    This is the shape the paper's amortization argument lives on — and
    the shape where the PR-5 packer pays off: every process's per-burst
    payloads (across all its LWGs) coalesce into a couple of HWG
    multicasts instead of ``groups x burst_size`` of them.
    """
    from ..core.config import LwgConfig
    from ..workloads.cluster import Cluster

    config = LwgConfig(enable_batching=enable_batching)
    cluster = Cluster(
        num_processes=COMAPPED_PROCESSES,
        seed=seed,
        flavour="static",
        lwg_config=config,
        keep_trace=False,
        checkers=False,
    )
    groups = [f"g{i}" for i in range(COMAPPED_GROUPS)]
    for node in cluster.process_ids:
        for group in groups:
            cluster.services[node].join(group)
    cluster.run_for(8 * SECOND)
    for burst in range(COMAPPED_BURSTS):
        for node in cluster.process_ids:
            for group in groups:
                for k in range(COMAPPED_BURST_SIZE):
                    cluster.services[node].send(group, f"m:{burst}:{k}")
        cluster.run_for(SECOND // 2)
    cluster.run_for(2 * SECOND)
    return cluster


def _app_deliveries(cluster) -> int:
    """User-payload deliveries summed over every process and LWG."""
    return sum(
        entry.delivered
        for service in cluster.services.values()
        for entry in service.table.locals.values()
    )


@_register(
    "lwg.comapped_traffic",
    fast=True,
    description="N LWGs on one HWG, batching on vs off",
)
def bench_lwg_comapped(seed: int) -> Tuple[int, Dict[str, Any]]:
    start = time.perf_counter()
    batched = comapped_traffic_workload(seed, enable_batching=True)
    wall_on = max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    unbatched = comapped_traffic_workload(seed, enable_batching=False)
    wall_off = max(time.perf_counter() - start, 1e-9)
    events_on, events_off = _app_deliveries(batched), _app_deliveries(unbatched)
    eps_on, eps_off = events_on / wall_on, events_off / wall_off
    return events_on, {
        "batching_on_eps": round(eps_on, 1),
        "batching_off_eps": round(eps_off, 1),
        "speedup": round(eps_on / eps_off, 2),
        "deliveries_on": events_on,
        "deliveries_off": events_off,
        "fabric_msgs_on": batched.env.network.messages_sent,
        "fabric_msgs_off": unbatched.env.network.messages_sent,
    }


# ----------------------------------------------------------------------
# Naming reconciliation: Merkle descent vs flat-digest exchange
# ----------------------------------------------------------------------
RECONCILE_SHARED = 100_000
RECONCILE_DIVERGED = 64  # fresh records per side
RECONCILE_UPDATED = 16  # shared records one side holds in a newer version

#: Flat-design costing (PR 5's retired 3-message push-pull): 48 bytes
#: per digest entry, 96 per record, 96 per message envelope — the same
#: rates the Merkle messages are costed at, so the comparison is about
#: *which* entries travel, not the encoding.
_FLAT_DIGEST_ENTRY = 48
_RECORD_BYTES = 96
_ENVELOPE_BYTES = 96

#: Prebuilt shared base per seed — building 100k records dominates the
#: workload's first run, so repeats fork cheap clones instead (the
#: harness keeps the best run, i.e. a warm one).
_RECONCILE_BASE: Dict[int, Any] = {}


def _reconcile_record(lwg: str, coord: str, i: int, version: int = 1):
    from ..naming.records import MappingRecord
    from ..vsync.view import ViewId

    return MappingRecord(
        lwg=lwg, lwg_view=ViewId(coord, i), lwg_members=(coord,),
        hwg=f"hwg:{i % 9}", hwg_view=ViewId("h", i), version=version, writer=coord,
    )


def _reconcile_pair(seed: int):
    """Two 100k-record replicas with a small, realistic divergence.

    Each side holds ``RECONCILE_DIVERGED`` fresh records the other
    lacks (with a genealogy edge each) and ``RECONCILE_UPDATED``
    shared records re-registered at a newer version — the remote-newer
    digest case a pure "missing keys" exchange would miss.
    """
    from ..naming.database import NamingDatabase
    from ..vsync.view import ViewId

    base = _RECONCILE_BASE.get(seed)
    if base is None:
        base = NamingDatabase()
        for i in range(RECONCILE_SHARED):
            base.apply(_reconcile_record(f"lwg:s{i}", "ps", i))
        base.content_hash()  # pre-warm the Merkle hash cache
        _RECONCILE_BASE[seed] = base
    left, right = base.clone(), base.clone()
    for i in range(RECONCILE_DIVERGED):
        left.apply(
            _reconcile_record(f"lwg:l{i}", "pl", i + 1),
            parents=[ViewId("pl", i)],
        )
        right.apply(
            _reconcile_record(f"lwg:r{i}", "pr", i + 1),
            parents=[ViewId("pr", i)],
        )
    for i in range(RECONCILE_UPDATED):
        left.apply(_reconcile_record(f"lwg:s{2 * i}", "ps", 2 * i, version=2))
        right.apply(_reconcile_record(f"lwg:s{2 * i + 1}", "ps", 2 * i + 1, version=2))
    return left, right


def reconcile_delta_workload(seed: int) -> Tuple[int, Dict[str, Any]]:
    """Wire cost of the Merkle-prefix descent at 100k-record scale.

    Runs the real descent engine (the same :class:`MerkleSession` loop
    the server drives, one message per step) between two replicas that
    diverge by a few dozen records, weighs every step with the actual
    ``SyncRequest``/``SyncReply`` sizes, and compares against what PR
    5's flat-digest 3-message exchange would have shipped for the same
    divergence.  The workload *asserts* the design's acceptance bounds —
    ≤0.1x flat bytes, O(log n) rounds, byte-identical fixed point — so
    a regression fails the benchmark loudly, not just the baseline gate.
    """
    from ..naming.merkle import DEFAULT_DEPTH
    from ..naming.messages import SyncReply, SyncRequest
    from ..naming.reconciliation import databases_identical, merkle_exchange

    left, right = _reconcile_pair(seed)
    flat_digest_entries = len(left) + len(right)

    transcript = merkle_exchange(left, right)
    merkle_bytes = 0
    merkle_records = 0
    for step_no, (sender_label, delta) in enumerate(transcript):
        sender = "nsA" if sender_label == "left" else "nsB"
        if step_no == 0:
            message = SyncRequest(
                sender=sender, sync_id=1, db_hash="x" * 16,
                expansions=delta.expansions,
                genealogy_children=delta.genealogy_children,
            )
        else:
            message = SyncReply(
                sender=sender, sync_id=1, round_no=step_no,
                expansions=delta.expansions,
                leaf_digests=delta.leaf_digests,
                records=delta.records,
                genealogy=delta.genealogy,
                genealogy_children=delta.genealogy_children,
            )
        merkle_bytes += message.size_bytes()
        merkle_records += len(delta.records)
    rounds = len(transcript)

    # What the retired design would pay: both full digests travel, then
    # the records — regardless of how small the divergence is.  The
    # record set is identical in both designs (the LWW delta), so the
    # descent's own shipment count prices the flat exchange too.
    flat_bytes = (
        3 * _ENVELOPE_BYTES
        + _FLAT_DIGEST_ENTRY * flat_digest_entries
        + _RECORD_BYTES * merkle_records
    )

    assert databases_identical([left, right])
    assert rounds <= 2 * (DEFAULT_DEPTH + 1), f"descent took {rounds} rounds"
    assert merkle_bytes <= 0.1 * flat_bytes, (
        f"merkle exchange shipped {merkle_bytes}B vs flat {flat_bytes}B"
    )

    # Converged replicas short-circuit the next exchange on the hash:
    # one opener, one in_sync acknowledgement.
    steady_bytes = (
        SyncRequest(
            sender="nsA", sync_id=2, db_hash=left.content_hash(),
            expansions={"": left.merkle.children("")},
            genealogy_children=tuple(left.genealogy_edges()),
        ).size_bytes()
        + SyncReply(sender="nsB", sync_id=2, in_sync=True).size_bytes()
    )

    return len(left) + len(right), {
        "records": len(left),
        "merkle_bytes": merkle_bytes,
        "flat_bytes": flat_bytes,
        "bytes_ratio": round(merkle_bytes / flat_bytes, 4),
        "rounds": rounds,
        "records_shipped": merkle_records,
        "steady_bytes": steady_bytes,
    }


@_register(
    "naming.reconcile_delta",
    fast=True,
    description="Merkle descent vs flat-digest reconciliation at 100k records",
)
def bench_naming_reconcile_delta(seed: int) -> Tuple[int, Dict[str, Any]]:
    return reconcile_delta_workload(seed)


# ----------------------------------------------------------------------
# Naming scale-out: sharded replica sets vs full replication
# ----------------------------------------------------------------------
SCALEOUT_SWEEP = (4, 16, 64)
SCALEOUT_RF = 3
SCALEOUT_WRITES = 192
SCALEOUT_SETTLE_S = 4


def shard_scaleout_workload(
    seed: int, num_servers: int, replication_factor: int
) -> Dict[str, float]:
    """Per-server naming load for one deployment shape.

    ``replication_factor=0`` is the fully-replicated legacy deployment
    (the comparison baseline).  One client writes
    :data:`SCALEOUT_WRITES` distinct LWG mappings (no parents, so the
    exchange cost is records, not genealogy), the cluster settles
    through several gossip periods, and every server's outbound naming
    traffic is metered at its own ``send``/``multicast`` seam — a
    multicast to ``k`` destinations counts ``k`` times its size, the
    same accounting the fabric uses.
    """
    from ..naming.client import NamingClient
    from ..naming.records import MappingRecord
    from ..naming.server import NameServer
    from ..naming.sharding import ShardMap
    from ..sim.process import SimRuntime
    from ..vsync.stack import ProtocolStack
    from ..vsync.view import ViewId

    env = SimRuntime.create(seed=seed, keep_trace=False)
    server_ids = [f"ns{i}" for i in range(num_servers)]
    shard_map = (
        ShardMap(server_ids, replication_factor) if replication_factor else None
    )
    bytes_sent = {node: 0 for node in server_ids}
    msgs_sent = {node: 0 for node in server_ids}
    servers = {}
    for node in server_ids:
        server = NameServer(env, node, peers=server_ids, shard_map=shard_map)
        servers[node] = server
        original_send, original_multicast = server.send, server.multicast

        def send(dst, msg, size=256, _n=node, _s=original_send):
            bytes_sent[_n] += size
            msgs_sent[_n] += 1
            return _s(dst, msg, size)

        def multicast(dsts, msg, size=256, _n=node, _m=original_multicast):
            targets = list(dsts)
            bytes_sent[_n] += size * len(targets)
            msgs_sent[_n] += len(targets)
            return _m(targets, msg, size)

        server.send = send
        server.multicast = multicast
    stack = ProtocolStack(env, "p0", env.group_addressing())
    client = NamingClient(stack, server_ids, shard_map=shard_map)
    acked = [0]
    for i in range(SCALEOUT_WRITES):
        record = MappingRecord(
            lwg=f"lwg:{i}", lwg_view=ViewId("p0", 1), lwg_members=("p0",),
            hwg=f"hwg:{i % 7}", hwg_view=ViewId("h", 1),
            version=client.next_version(), writer="p0",
        )
        client.set(record, on_reply=lambda _r: acked.__setitem__(0, acked[0] + 1))
        env.run_for(10 * MS)
    env.run_for(SCALEOUT_SETTLE_S * SECOND)
    assert acked[0] == SCALEOUT_WRITES, f"{acked[0]} of {SCALEOUT_WRITES} acked"
    resident = [len(s.db) for s in servers.values()]
    if shard_map is not None and not shard_map.fully_replicated:
        # Each write must live on exactly its replica set, nowhere else.
        assert sum(resident) == SCALEOUT_WRITES * replication_factor
    return {
        "bytes_per_server": sum(bytes_sent.values()) / num_servers,
        "msgs_per_server": sum(msgs_sent.values()) / num_servers,
        "records_per_server": sum(resident) / num_servers,
        "records_max": max(resident),
        "client_retries": client.retries,
    }


@_register(
    "naming.shard_scaleout",
    fast=False,
    description="per-server naming load, 4->64 sharded servers vs full replication",
)
def bench_naming_shard_scaleout(seed: int) -> Tuple[int, Dict[str, Any]]:
    """Sweep the roster at rf=3 and price full replication at 16 servers.

    Asserts the PR's acceptance bounds: at 16 servers the sharded
    deployment's per-server naming bytes and resident records are
    ≤0.35x the fully-replicated equivalent, and growing the roster
    4 -> 64 keeps per-server load flat (scale-out, not scale-up).
    """
    sweep = {n: shard_scaleout_workload(seed, n, SCALEOUT_RF) for n in SCALEOUT_SWEEP}
    full = shard_scaleout_workload(seed, 16, 0)
    bytes_ratio = sweep[16]["bytes_per_server"] / full["bytes_per_server"]
    records_ratio = sweep[16]["records_per_server"] / full["records_per_server"]
    assert bytes_ratio <= 0.35, f"per-server bytes ratio {bytes_ratio:.3f} > 0.35"
    assert records_ratio <= 0.35, (
        f"per-server records ratio {records_ratio:.3f} > 0.35"
    )
    assert sweep[64]["records_per_server"] <= 1.1 * sweep[4]["records_per_server"]
    assert sweep[64]["msgs_per_server"] <= 1.1 * sweep[4]["msgs_per_server"]
    events = SCALEOUT_WRITES * (len(SCALEOUT_SWEEP) + 1)
    return events, {
        "bytes_ratio_16": round(bytes_ratio, 4),
        "records_ratio_16": round(records_ratio, 4),
        "bytes_per_server_4": round(sweep[4]["bytes_per_server"], 1),
        "bytes_per_server_16": round(sweep[16]["bytes_per_server"], 1),
        "bytes_per_server_64": round(sweep[64]["bytes_per_server"], 1),
        "bytes_per_server_full_16": round(full["bytes_per_server"], 1),
        "records_per_server_64": round(sweep[64]["records_per_server"], 1),
        "records_per_server_full_16": round(full["records_per_server"], 1),
    }


# ----------------------------------------------------------------------
# Policy-engine benchmarks (mirror benchmarks/bench_policies.py)
# ----------------------------------------------------------------------
POLICY_EVALS = 12
POLICY_LWGS = 200
POLICY_PROCS = 24
POLICY_HWGS = 12


def policy_scale_snapshot(seed: int):
    """A high-group-count local state: 200 LWGs over 24 processes.

    Deterministic from ``seed`` alone (a dedicated RNG stream — never
    Python's hash order), shaped like the placement workload: nested
    member windows per 12-process zone, LWG counts skewed toward the
    narrow windows.
    """
    from ..core import PolicySnapshot
    from ..runtime.rng import RngRegistry

    rng = RngRegistry(seed).stream("bench:policy_scale")
    procs = [f"p{i}" for i in range(POLICY_PROCS)]
    hwgs = {}
    for i in range(POLICY_HWGS):
        zone = (i % 2) * 12
        width = 4 + (i * 5) % 9  # 4..12
        hwgs[f"hwg:{i:02d}"] = frozenset(procs[zone : zone + width])
    hwg_names = sorted(hwgs)
    coordinated = {}
    for g in range(POLICY_LWGS):
        hwg = hwg_names[rng.randrange(POLICY_HWGS)]
        pool = sorted(hwgs[hwg])
        width = max(1, len(pool) - rng.randrange(3))
        coordinated[f"lwg:g{g:03d}"] = (frozenset(pool[:width]), hwg)
    return PolicySnapshot(
        node="p0",
        now_us=60 * SECOND,
        coordinated_lwgs=coordinated,
        hwg_members=hwgs,
        local_lwgs_per_hwg={
            h: sum(1 for _, (_, u) in coordinated.items() if u == h)
            for h in hwg_names
        },
        hwg_idle_since={h: 0 for h in hwg_names},
        hwg_pinned={h: () for h in hwg_names},
    )


@_register(
    "lwg.policy_eval_scale",
    fast=True,
    description="policy evaluation over 200 LWGs / 12 HWGs, paper vs optimizer",
)
def bench_policy_eval_scale(seed: int) -> Tuple[int, Dict[str, Any]]:
    """Per-evaluation cost of both placement policies at high group count.

    Each evaluation builds a fresh snapshot (the cached-property derived
    data is part of the cost being measured, exactly as in production
    where every policy tick starts from a new snapshot).
    """
    from ..core import LwgConfig, PolicyEngine

    paper = PolicyEngine(LwgConfig())
    optimizer = PolicyEngine(LwgConfig(placement_policy="optimizer"))
    counts = {"paper": 0, "optimizer": 0}
    for _ in range(POLICY_EVALS):
        snap = policy_scale_snapshot(seed)
        counts["paper"] += len(paper.evaluate(snap))
        snap = policy_scale_snapshot(seed)
        counts["optimizer"] += len(
            optimizer.evaluate(snap, mint=lambda: "hwg:minted")
        )
    return 2 * POLICY_EVALS, {
        "lwgs": POLICY_LWGS,
        "hwgs": POLICY_HWGS,
        "paper_actions_per_eval": counts["paper"] // POLICY_EVALS,
        "optimizer_actions_per_eval": counts["optimizer"] // POLICY_EVALS,
    }


# ----------------------------------------------------------------------
# Membership scale: flat vs zoned failure detection (PROTOCOLS.md §20)
# ----------------------------------------------------------------------
FD_SCALE_SWEEP = (64, 256, 1024)
FD_SCALE_ZONES = {64: 4, 256: 4, 1024: 8}
FD_SCALE_STEADY_N = 256
FD_SCALE_HEAL_N = 64


def _fd_rounds(population) -> int:
    """FD rounds actually driven across the population."""
    return sum(fd.heartbeats_sent for fd in population.detectors.values())


def _fd_steady(seed: int, n: int, topology: str, zones: int):
    """Wall-time one steady-state stretch of the dynamics population.

    Both topologies simulate the identical population for the identical
    sim duration, so rounds/wall-second is the substrate's CPU price at
    that scale — the 'steady-state events/sec' figure of the node-axis
    sweep.
    """
    from ..workloads.scale import _Population

    population = _Population(seed, n, topology, zones)
    start = time.perf_counter()
    population.run_for(2 * SECOND)
    wall = time.perf_counter() - start
    rounds = _fd_rounds(population)
    return rounds, wall, population


@_register(
    "membership.fd_scale",
    fast=True,
    description="flat vs zoned failure detection at 64/256/1024 nodes",
)
def bench_membership_fd_scale(seed: int) -> Tuple[int, Dict[str, Any]]:
    """The zoned-membership scale story, gated on its acceptance bounds.

    Census (networkless) prices FD datagrams/period and tracked-peer
    state across the sweep; the steady-state run prices CPU per FD round
    at n=256; the heal run measures partition-heal convergence at n=64.
    Asserts the PR's acceptance criteria: zoned ≤0.25x flat FD message
    volume at n=256, zoned ≥0.9x flat steady-state events/sec, and both
    topologies re-converging after a heal.
    """
    from ..workloads.scale import fd_census, fd_dynamics

    census: Dict[str, Any] = {}
    for n in FD_SCALE_SWEEP:
        flat = fd_census(seed, n, "flat")
        zoned = fd_census(seed, n, "zoned", FD_SCALE_ZONES[n])
        census[n] = {
            "ratio": zoned["datagrams_per_period"] / flat["datagrams_per_period"],
            "flat": flat,
            "zoned": zoned,
        }
    ratio_256 = census[FD_SCALE_STEADY_N]["ratio"]
    assert ratio_256 <= 0.25, f"zoned/flat FD datagram ratio {ratio_256:.3f} > 0.25"

    flat_rounds, flat_wall, _ = _fd_steady(
        seed, FD_SCALE_STEADY_N, "flat", 0
    )
    zoned_rounds, zoned_wall, _ = _fd_steady(
        seed, FD_SCALE_STEADY_N, "zoned", FD_SCALE_ZONES[FD_SCALE_STEADY_N]
    )
    steady_ratio = (zoned_rounds / zoned_wall) / (flat_rounds / flat_wall)
    assert steady_ratio >= 0.9, (
        f"zoned steady-state events/sec {steady_ratio:.3f}x flat < 0.9x"
    )

    heal = {
        topology: fd_dynamics(
            seed, FD_SCALE_HEAL_N, topology, FD_SCALE_ZONES[FD_SCALE_HEAL_N]
        )
        for topology in ("flat", "zoned")
    }
    for topology, outcome in heal.items():
        assert outcome["heal_convergence_us"] > 0, f"{topology} heal never converged"

    events = flat_rounds + zoned_rounds
    return events, {
        "fd_datagram_ratio_64": round(census[64]["ratio"], 4),
        "fd_datagram_ratio_256": round(ratio_256, 4),
        "fd_datagram_ratio_1024": round(census[1024]["ratio"], 4),
        "flat_datagrams_per_period_256": census[256]["flat"]["datagrams_per_period"],
        "zoned_datagrams_per_period_256": census[256]["zoned"]["datagrams_per_period"],
        "flat_tracked_peers_1024": census[1024]["flat"]["tracked_peers_max"],
        "zoned_tracked_peers_1024": census[1024]["zoned"]["tracked_peers_max"],
        "steady_events_per_sec_ratio_256": round(steady_ratio, 3),
        "flat_heal_convergence_us_64": heal["flat"]["heal_convergence_us"],
        "zoned_heal_convergence_us_64": heal["zoned"]["heal_convergence_us"],
    }
