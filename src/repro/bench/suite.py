"""The benchmark suite: deterministic workloads timed with a wall clock.

Each benchmark is a pure function ``(seed) -> (events, extra)`` where
``events`` is the unit count the events/sec figure is computed from and
``extra`` carries workload-specific counters (messages delivered, sim
time).  The harness times the function, repeats it, and keeps the best
run — wall time is the only non-deterministic quantity; every workload
replays the exact same event sequence for a given seed.

The workload shapes deliberately mirror the pytest-benchmark files under
``benchmarks/`` (``bench_engine.py``, ``bench_fabric.py``) so the two
views of performance — interactive pytest runs and the CI-gated
trajectory — measure the same hot paths:

* ``engine.chain`` — per-event cost of the discrete-event loop;
* ``engine.timer_heap`` — heap push/pop cost with a deep queue;
* ``fabric.multicast_fanout`` — ``Network.multicast`` to a wide,
  repeated destination set (the LWG stack's dominant call shape);
* ``fabric.unicast_storm`` — ``Network.send`` point-to-point traffic;
* ``tracer.gated_emit`` — emit cost when nobody listens to a category;
* ``cluster.steady_traffic`` — end-to-end ordered delivery through the
  full LWG stack (checkers off, records off: the perf configuration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..runtime.rng import RngRegistry
from ..runtime.trace import Tracer
from ..sim.engine import MS, SECOND, Simulation
from ..sim.network import LinkModel, Network

BenchFn = Callable[[int], Tuple[int, Dict[str, Any]]]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark."""

    name: str
    fn: BenchFn
    fast: bool
    description: str


@dataclass
class BenchResult:
    """Timed outcome of one benchmark (best of ``repeat`` runs)."""

    name: str
    events: int
    wall_s: float
    events_per_sec: float
    seed: int
    repeat: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "seed": self.seed,
            "repeat": self.repeat,
            **{k: v for k, v in sorted(self.extra.items())},
        }


SUITE: List[BenchSpec] = []


def _register(name: str, fast: bool, description: str) -> Callable[[BenchFn], BenchFn]:
    def deco(fn: BenchFn) -> BenchFn:
        SUITE.append(BenchSpec(name=name, fn=fn, fast=fast, description=description))
        return fn

    return deco


def run_benchmark(spec: BenchSpec, seed: int = 2000, repeat: int = 3) -> BenchResult:
    """Run ``spec`` ``repeat`` times and keep the fastest wall time."""
    best_wall = float("inf")
    events = 0
    extra: Dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        events, extra = spec.fn(seed)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
    best_wall = max(best_wall, 1e-9)
    return BenchResult(
        name=spec.name,
        events=events,
        wall_s=best_wall,
        events_per_sec=events / best_wall,
        seed=seed,
        repeat=max(1, repeat),
        extra=extra,
    )


# ----------------------------------------------------------------------
# Engine benchmarks (mirror benchmarks/bench_engine.py)
# ----------------------------------------------------------------------
CHAIN_EVENTS = 20_000


def chain_workload(sim: Simulation, n_events: int) -> None:
    """Each event schedules its successor: a pure event-loop workload."""
    remaining = [n_events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(MS, tick)

    sim.schedule(MS, tick)
    sim.run_until(n_events * 2 * MS)
    assert remaining[0] == 0


@_register("engine.chain", fast=True, description="per-event cost of run_until")
def bench_engine_chain(seed: int) -> Tuple[int, Dict[str, Any]]:
    sim = Simulation()
    chain_workload(sim, CHAIN_EVENTS)
    return CHAIN_EVENTS, {"sim_time_us": sim.now}


TIMER_HEAP_EVENTS = 30_000


def timer_heap_workload(sim: Simulation, n_events: int) -> None:
    """Schedule a deep, shuffled timer heap up front, then drain it."""
    for i in range(n_events):
        # Deterministic pseudo-shuffle keeps push order != pop order, so
        # every push/pop pays real sift comparisons.
        sim.schedule(1 + (i * 7919) % n_events, lambda: None)
    sim.run()


@_register("engine.timer_heap", fast=True, description="deep-heap push/pop cost")
def bench_engine_timer_heap(seed: int) -> Tuple[int, Dict[str, Any]]:
    sim = Simulation()
    timer_heap_workload(sim, TIMER_HEAP_EVENTS)
    return TIMER_HEAP_EVENTS, {"sim_time_us": sim.now}


# ----------------------------------------------------------------------
# Fabric benchmarks (mirror benchmarks/bench_fabric.py)
# ----------------------------------------------------------------------
FANOUT_NODES = 24
FANOUT_ROUNDS = 1_500


def multicast_fanout_workload(
    seed: int, nodes: int = FANOUT_NODES, rounds: int = FANOUT_ROUNDS
) -> Network:
    """One sender multicasts to the same wide destination set repeatedly.

    This is the LWG stack's dominant fabric call shape: ``Ordered`` /
    beacon traffic to a stable view membership.
    """
    sim = Simulation()
    net = Network(
        sim, RngRegistry(seed), link=LinkModel(jitter_us=0), shared_medium=False
    )
    sink = lambda src, payload, size: None  # noqa: E731
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        net.attach(name, sink)
    dsts = set(names[1:])

    def blast() -> None:
        if net.messages_sent < rounds:
            net.multicast("n0", dsts, payload="m", size=256)
            sim.schedule(MS, blast)

    sim.schedule(0, blast)
    sim.run()
    return net


@_register(
    "fabric.multicast_fanout", fast=True, description="wide repeated multicast"
)
def bench_fabric_multicast(seed: int) -> Tuple[int, Dict[str, Any]]:
    net = multicast_fanout_workload(seed)
    return net.messages_delivered, {
        "messages_delivered": net.messages_delivered,
        "messages_sent": net.messages_sent,
    }


STORM_PAIRS = 8
STORM_MESSAGES = 12_000


def unicast_storm_workload(
    seed: int, pairs: int = STORM_PAIRS, messages: int = STORM_MESSAGES
) -> Network:
    """Point-to-point sends round-robining over several node pairs."""
    sim = Simulation()
    net = Network(
        sim, RngRegistry(seed), link=LinkModel(jitter_us=0), shared_medium=False
    )
    sink = lambda src, payload, size: None  # noqa: E731
    for i in range(pairs):
        net.attach(f"a{i}", sink)
        net.attach(f"b{i}", sink)

    sent = [0]

    def blast() -> None:
        if sent[0] < messages:
            i = sent[0] % pairs
            net.send(f"a{i}", f"b{i}", payload="m", size=256)
            sent[0] += 1
            sim.schedule(100, blast)

    sim.schedule(0, blast)
    sim.run()
    return net


@_register("fabric.unicast_storm", fast=True, description="point-to-point sends")
def bench_fabric_unicast(seed: int) -> Tuple[int, Dict[str, Any]]:
    net = unicast_storm_workload(seed)
    return net.messages_delivered, {
        "messages_delivered": net.messages_delivered,
        "messages_sent": net.messages_sent,
    }


# ----------------------------------------------------------------------
# Tracer benchmark
# ----------------------------------------------------------------------
TRACE_EMITS = 60_000


def gated_emit_workload(n_emits: int = TRACE_EMITS) -> Tracer:
    """Emit into a category nobody records or listens to.

    With ``keep_records=False`` and a listener on a *different* category
    this is the benchmark/soak configuration: the hot layers' events
    must cost as close to nothing as the API allows.
    """
    tracer = Tracer(clock=lambda: 0, keep_records=False)
    seen = []
    try:
        tracer.subscribe(seen.append, categories=("network",))
    except TypeError:  # pre-category-subscription Tracer
        tracer.subscribe(
            lambda record: seen.append(record) if record.category == "network" else None
        )
    enabled = getattr(tracer, "enabled", None)
    for i in range(n_emits):
        if enabled is None or enabled("hwg"):
            tracer.emit("hwg", "data_delivered", node="p0", seq=i, sender="p1")
    assert not seen
    return tracer


@_register("tracer.gated_emit", fast=True, description="emit with no audience")
def bench_tracer_gated(seed: int) -> Tuple[int, Dict[str, Any]]:
    gated_emit_workload()
    return TRACE_EMITS, {}


# ----------------------------------------------------------------------
# End-to-end cluster benchmark
# ----------------------------------------------------------------------
TRAFFIC_PROCESSES = 6
TRAFFIC_BURSTS = 40
TRAFFIC_BURST_SIZE = 5


def steady_traffic_workload(
    seed: int,
    processes: int = TRAFFIC_PROCESSES,
    bursts: int = TRAFFIC_BURSTS,
    burst_size: int = TRAFFIC_BURST_SIZE,
):
    """Ordered traffic through the full LWG stack, perf configuration.

    Checkers and record keeping are off — the documented setup for
    timing-sensitive runs — so the tracer's category gating and the
    fabric fast paths both sit on the measured path.
    """
    from ..workloads.cluster import Cluster

    cluster = Cluster(
        num_processes=processes, seed=seed, keep_trace=False, checkers=False
    )
    group = "bench"
    for node in cluster.process_ids:
        cluster.services[node].join(group)
    cluster.run_for(8 * SECOND)
    for burst in range(bursts):
        for node in cluster.process_ids:
            for k in range(burst_size):
                cluster.services[node].send(group, f"m:{burst}:{k}")
        cluster.run_for(SECOND // 2)
    cluster.run_for(2 * SECOND)
    return cluster


@_register(
    "cluster.steady_traffic", fast=False, description="end-to-end ordered delivery"
)
def bench_cluster_traffic(seed: int) -> Tuple[int, Dict[str, Any]]:
    cluster = steady_traffic_workload(seed)
    delivered = cluster.env.network.messages_delivered
    return delivered, {
        "messages_delivered": delivered,
        "messages_sent": cluster.env.network.messages_sent,
        "sim_time_us": cluster.env.now,
    }


# ----------------------------------------------------------------------
# Co-mapped LWG traffic: the batching win
# ----------------------------------------------------------------------
COMAPPED_PROCESSES = 4
COMAPPED_GROUPS = 6
COMAPPED_BURSTS = 25
COMAPPED_BURST_SIZE = 4


def comapped_traffic_workload(seed: int, enable_batching: bool):
    """Several LWGs statically co-mapped on ONE shared HWG, all chatty.

    This is the shape the paper's amortization argument lives on — and
    the shape where the PR-5 packer pays off: every process's per-burst
    payloads (across all its LWGs) coalesce into a couple of HWG
    multicasts instead of ``groups x burst_size`` of them.
    """
    from ..core.config import LwgConfig
    from ..workloads.cluster import Cluster

    config = LwgConfig(enable_batching=enable_batching)
    cluster = Cluster(
        num_processes=COMAPPED_PROCESSES,
        seed=seed,
        flavour="static",
        lwg_config=config,
        keep_trace=False,
        checkers=False,
    )
    groups = [f"g{i}" for i in range(COMAPPED_GROUPS)]
    for node in cluster.process_ids:
        for group in groups:
            cluster.services[node].join(group)
    cluster.run_for(8 * SECOND)
    for burst in range(COMAPPED_BURSTS):
        for node in cluster.process_ids:
            for group in groups:
                for k in range(COMAPPED_BURST_SIZE):
                    cluster.services[node].send(group, f"m:{burst}:{k}")
        cluster.run_for(SECOND // 2)
    cluster.run_for(2 * SECOND)
    return cluster


def _app_deliveries(cluster) -> int:
    """User-payload deliveries summed over every process and LWG."""
    return sum(
        entry.delivered
        for service in cluster.services.values()
        for entry in service.table.locals.values()
    )


@_register(
    "lwg.comapped_traffic",
    fast=True,
    description="N LWGs on one HWG, batching on vs off",
)
def bench_lwg_comapped(seed: int) -> Tuple[int, Dict[str, Any]]:
    start = time.perf_counter()
    batched = comapped_traffic_workload(seed, enable_batching=True)
    wall_on = max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    unbatched = comapped_traffic_workload(seed, enable_batching=False)
    wall_off = max(time.perf_counter() - start, 1e-9)
    events_on, events_off = _app_deliveries(batched), _app_deliveries(unbatched)
    eps_on, eps_off = events_on / wall_on, events_off / wall_off
    return events_on, {
        "batching_on_eps": round(eps_on, 1),
        "batching_off_eps": round(eps_off, 1),
        "speedup": round(eps_on / eps_off, 2),
        "deliveries_on": events_on,
        "deliveries_off": events_off,
        "fabric_msgs_on": batched.env.network.messages_sent,
        "fabric_msgs_off": unbatched.env.network.messages_sent,
    }


# ----------------------------------------------------------------------
# Naming reconciliation: delta vs full-database exchange
# ----------------------------------------------------------------------
RECONCILE_SHARED = 300
RECONCILE_DIVERGED = 30
RECONCILE_ROUNDS = 10


def _reconcile_pair(seed_tag: str):
    """Two replicas sharing a base of records, each with its own delta."""
    from ..naming.database import NamingDatabase
    from ..naming.records import MappingRecord
    from ..vsync.view import ViewId

    def make(lwg: str, coord: str, i: int) -> MappingRecord:
        return MappingRecord(
            lwg=lwg, lwg_view=ViewId(coord, i), lwg_members=(coord,),
            hwg=f"hwg:{i % 9}", hwg_view=ViewId("h", i), version=1, writer=coord,
        )

    left, right = NamingDatabase(), NamingDatabase()
    for i in range(RECONCILE_SHARED):
        shared = make(f"lwg:{seed_tag}:s{i}", "ps", i)
        left.apply(shared)
        right.apply(shared)
    for i in range(RECONCILE_DIVERGED):
        left.apply(make(f"lwg:{seed_tag}:l{i}", "pl", i))
        right.apply(make(f"lwg:{seed_tag}:r{i}", "pr", i))
    return left, right


def reconcile_delta_workload(seed: int) -> Tuple[int, Dict[str, Any]]:
    """Wire bytes to reconcile partially-divergent replicas, both designs.

    The delta design is the implemented 3-message push-pull: digests
    travel, then only ``records_to_send``/``genealogy_to_send`` results.
    The full design ships both complete databases.  Both converge to the
    same state; the bytes differ — and once converged, the next delta
    exchange collapses to a hash handshake (``steady_bytes``).
    """
    from ..naming.messages import SyncReply, SyncRequest, SyncUpdate
    from ..naming.reconciliation import (
        absorb,
        databases_identical,
        genealogy_to_send,
        records_to_send,
    )

    delta_bytes = full_bytes = steady_bytes = 0
    records_processed = 0
    for round_no in range(RECONCILE_ROUNDS):
        left, right = _reconcile_pair(f"r{round_no}")
        request = SyncRequest(
            sender="nsA", sync_id=1, digest=left.digest(),
            genealogy_children=tuple(left.genealogy_edges()),
            db_hash=left.content_hash(),
        )
        reply = SyncReply(
            sender="nsB", sync_id=1,
            records=tuple(records_to_send(right, request.digest)),
            genealogy=genealogy_to_send(right, request.genealogy_children),
            digest=right.digest(),
            genealogy_children=tuple(right.genealogy_edges()),
        )
        absorb(left, reply.records, reply.genealogy)
        update = SyncUpdate(
            sender="nsA", sync_id=1,
            records=tuple(records_to_send(left, reply.digest)),
            genealogy=genealogy_to_send(left, reply.genealogy_children),
        )
        absorb(right, update.records, update.genealogy)
        delta_bytes += request.size_bytes() + reply.size_bytes() + update.size_bytes()

        # Converged replicas short-circuit the next exchange on the hash.
        assert databases_identical([left, right])
        steady_request = SyncRequest(sender="nsA", sync_id=2, db_hash=left.content_hash())
        steady_reply = SyncReply(sender="nsB", sync_id=2, in_sync=True)
        steady_bytes += steady_request.size_bytes() + steady_reply.size_bytes()

        full_left, full_right = _reconcile_pair(f"r{round_no}")
        full_reply = SyncReply(
            sender="nsB", sync_id=1,
            records=tuple(full_right.snapshot()),
            genealogy=full_right.genealogy_edges(),
            digest=full_right.digest(),
            genealogy_children=tuple(full_right.genealogy_edges()),
        )
        absorb(full_left, full_reply.records, full_reply.genealogy)
        full_update = SyncUpdate(
            sender="nsA", sync_id=1,
            records=tuple(full_left.snapshot()),
            genealogy=full_left.genealogy_edges(),
        )
        absorb(full_right, full_update.records, full_update.genealogy)
        full_bytes += (
            SyncRequest(sender="nsA", sync_id=1, digest=full_left.digest()).size_bytes()
            + full_reply.size_bytes()
            + full_update.size_bytes()
        )
        assert databases_identical([left, right, full_left, full_right])
        records_processed += len(left) + len(right)
    return records_processed, {
        "delta_bytes": delta_bytes,
        "full_bytes": full_bytes,
        "steady_bytes": steady_bytes,
        "bytes_ratio": round(delta_bytes / full_bytes, 3),
    }


@_register(
    "naming.reconcile_delta",
    fast=True,
    description="delta vs full-database reconciliation bytes",
)
def bench_naming_reconcile_delta(seed: int) -> Tuple[int, Dict[str, Any]]:
    return reconcile_delta_workload(seed)
