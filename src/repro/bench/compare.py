"""Baseline comparison: the regression gate of ``python -m repro bench``.

A baseline file maps benchmark names to the numbers a past run recorded
(the committed ``benchmarks/baseline.json`` holds the pre-optimization
figures so every subsequent run proves its speedups against a fixed
origin).  Comparison is on ``events_per_sec`` only: a benchmark regresses
when it falls more than ``threshold`` (fraction, default 0.15) below its
baseline.  Benchmarks missing from either side are reported but never
fail the gate — adding a benchmark must not require refreshing the
baseline in the same commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .suite import BenchResult

DEFAULT_THRESHOLD = 0.15


@dataclass
class CompareResult:
    """Outcome of checking one run against a baseline."""

    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    """Load a baseline file; returns ``{bench_name: {metrics...}}``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    results = data.get("results", data)
    if not isinstance(results, dict):
        raise ValueError(f"malformed baseline file: {path}")
    return results


def compare_results(
    results: List[BenchResult],
    baseline: Dict[str, Dict[str, float]],
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareResult:
    """Compare a run against ``baseline`` at the given regression threshold."""
    out = CompareResult()
    for result in results:
        base = baseline.get(result.name)
        if base is None or "events_per_sec" not in base:
            out.missing_in_baseline.append(result.name)
            out.lines.append(f"  {result.name:26s} {result.events_per_sec:12.0f} ev/s  (no baseline)")
            continue
        base_eps = float(base["events_per_sec"])
        ratio = result.events_per_sec / base_eps if base_eps else float("inf")
        verdict = "ok"
        if result.events_per_sec < base_eps * (1.0 - threshold):
            verdict = "REGRESSION"
            out.regressions.append(result.name)
        elif ratio >= 1.0 + threshold:
            verdict = "improved"
            out.improvements.append(result.name)
        out.lines.append(
            f"  {result.name:26s} {result.events_per_sec:12.0f} ev/s"
            f"  vs {base_eps:12.0f}  ({ratio:5.2f}x)  {verdict}"
        )
    return out
