"""The narrow protocol surface between protocol code and its backend.

The paper presents the LWG service as a *library* over a
virtual-synchrony substrate; these :class:`typing.Protocol` classes pin
down exactly what that library (and the substrate itself) may assume
about its environment.  Protocol layers receive one
:class:`Runtime` bundle and touch nothing outside it:

* ``runtime.clock.now`` / ``runtime.now`` — current time in integer
  microseconds (simulated or wall);
* ``runtime.scheduler`` — one-shot timers with cancellation;
* ``runtime.fabric`` — the message plane: per-node delivery callbacks,
  unicast, multicast, liveness flags and partition drop-filters;
* ``runtime.rng`` — seeded, stream-split randomness;
* ``runtime.tracer`` — structured event tracing;
* ``runtime.failures`` — crash/recovery transition notifications.

Conformance is structural: the discrete-event backend satisfies these
with :class:`~repro.sim.engine.Simulation` (Clock + Scheduler) and
:class:`~repro.sim.network.Network` (Fabric); the real-time backend with
wall-clock asyncio timers and UDP sockets.  No protocol object ever
imports a backend module.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, List, Protocol, Sequence, Set

from .rng import RngRegistry
from .trace import Tracer

#: Process identifier on the fabric (the paper's process names).
NodeId = str

#: Delivery upcall registered per node: ``(src, payload, size)``.
DeliveryCallback = Callable[[NodeId, Any, int], None]

#: One millisecond in the runtime's integer-microsecond time base.
MS = 1_000
#: One second in the runtime's integer-microsecond time base.
SECOND = 1_000_000


class TimerHandle(Protocol):
    """Cancellation handle returned by :meth:`Scheduler.schedule`."""

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""

    @property
    def pending(self) -> bool:
        """True while the timer is still scheduled to fire."""


class Clock(Protocol):
    """A source of integer-microsecond timestamps."""

    @property
    def now(self) -> int:
        """Current time in microseconds (simulated or wall)."""


class Scheduler(Protocol):
    """One-shot timers; periodic behaviour is built above this."""

    def schedule(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` ``delay`` microseconds from now."""

    def schedule_at(self, time: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute time ``time`` (microseconds)."""


class Fabric(Protocol):
    """The message plane: named nodes, unicast/multicast, drop-filters.

    Partitions are expressed as block assignments — messages flow only
    within a block — which both backends implement as a *drop-filter* on
    the send and delivery paths (the simulator drops in its scheduling
    step; the UDP fabric drops datagrams in userspace, no iptables
    needed).
    """

    def attach(self, node: NodeId, callback: DeliveryCallback) -> None:
        """Register ``node`` with its delivery callback.  Node starts alive."""

    def detach(self, node: NodeId) -> None:
        """Remove ``node`` from the fabric entirely."""

    def send(self, src: NodeId, dst: NodeId, payload: Any, size: int = 256) -> bool:
        """Send a unicast message.  Returns False if dropped at the source."""

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], payload: Any, size: int = 256
    ) -> int:
        """Send one message to many destinations; returns deliveries scheduled."""

    def is_alive(self, node: NodeId) -> bool:
        """True if ``node`` is attached and not crashed."""

    def has_node(self, node: NodeId) -> bool:
        """True if ``node`` is attached (alive or crashed)."""

    def set_alive(self, node: NodeId, alive: bool) -> None:
        """Crash (``False``) or recover (``True``) a node."""

    def set_partitions(self, blocks: Sequence[Iterable[NodeId]]) -> None:
        """Install a partition drop-filter; unnamed nodes join block 0."""

    def heal(self) -> None:
        """Remove the partition drop-filter (all nodes in one block)."""

    def partition_blocks(self) -> List[FrozenSet[NodeId]]:
        """Current partition blocks containing at least one node."""

    def reachable(self, a: NodeId, b: NodeId) -> bool:
        """True if a message sent now from ``a`` would be deliverable to ``b``."""


class Addressing(Protocol):
    """Group-address subscriber registry (the IP-multicast analogue).

    The simulator uses a shared in-memory registry; the UDP fabric uses
    broadcast addressing (everyone is a potential subscriber, receivers
    filter) — exactly the split real IP multicast on a shared medium
    gives you.
    """

    def subscribe(self, group: str, node: NodeId) -> None:
        """Add ``node`` to the subscriber set of ``group``'s address."""

    def unsubscribe(self, group: str, node: NodeId) -> None:
        """Remove ``node`` from ``group``'s address."""

    def unsubscribe_all(self, node: NodeId) -> None:
        """Remove ``node`` from every group address (process teardown)."""

    def subscribers(self, group: str) -> Set[NodeId]:
        """Current subscriber set of ``group`` (reachability NOT applied)."""

    def groups_of(self, node: NodeId) -> Set[str]:
        """Every group address ``node`` is subscribed to."""


class FailureFeed(Protocol):
    """Crash/recovery injection and transition notification."""

    def on_transition(self, node: NodeId, hook: Callable[[bool], None]) -> None:
        """Register ``hook(crashed)`` called when ``node`` crashes/recovers."""

    def crash_now(self, node: NodeId) -> None:
        """Fail-stop ``node`` immediately."""

    def recover_now(self, node: NodeId) -> None:
        """Recover ``node`` immediately."""


class Runtime(Protocol):
    """Everything a protocol layer may touch, bundled."""

    @property
    def clock(self) -> Clock: ...

    @property
    def scheduler(self) -> Scheduler: ...

    @property
    def fabric(self) -> Fabric: ...

    @property
    def rng(self) -> RngRegistry: ...

    @property
    def tracer(self) -> Tracer: ...

    @property
    def failures(self) -> FailureFeed: ...

    @property
    def now(self) -> int:
        """Current time in microseconds (shorthand for ``clock.now``)."""

    def run_for(self, duration_us: int) -> None:
        """Drive the runtime forward ``duration_us`` microseconds.

        The simulation backend executes every event in the window; the
        asyncio backend runs its event loop for that much wall time.
        """

    def group_addressing(self) -> Addressing:
        """A fresh group-address registry appropriate for this backend."""
