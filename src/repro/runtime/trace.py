"""Structured event tracing, shared by every runtime backend.

Protocol layers emit ``(time, category, event, fields)`` records through a
shared :class:`Tracer`.  Tests and benchmarks subscribe to categories to
observe protocol behaviour (view installations, flushes, naming-service
reconciliations) without reaching into private state.

Traces round-trip through JSON Lines (:meth:`Tracer.to_jsonl` /
:meth:`Tracer.from_jsonl`) so runs on the real-time asyncio backend can
be captured per OS process, merged, and diffed or checker-replayed
against simulator runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:>12}us] {self.category}.{self.event} {detail}".rstrip()


TraceListener = Callable[[TraceRecord], None]


class Tracer:
    """Collects trace records and fans them out to listeners.

    Recording to the in-memory list can be disabled for long benchmark
    runs (listeners still fire) via ``keep_records=False``.

    Listeners subscribe either to every record (``categories=None``) or
    to a set of categories.  :meth:`enabled` answers "would a record in
    this category reach anyone?" in O(1), so hot protocol layers can skip
    building trace fields entirely when nobody is watching — the fast
    path that keeps benchmark and soak runs cheap.
    """

    def __init__(self, clock: Callable[[], int], keep_records: bool = True):
        self._clock = clock
        self._keep = keep_records
        self.records: List[TraceRecord] = []
        #: Registration order, kept for unsubscribe / re-derivation.
        self._subscriptions: List[Tuple[TraceListener, Optional[Tuple[str, ...]]]] = []
        self._wildcard: List[TraceListener] = []
        self._by_category: Dict[str, List[TraceListener]] = {}
        # Lazy indexes for ``select``: built on first use, invalidated
        # by ``emit``/``clear`` (staleness is detected by comparing
        # record counts, so emits merely mark them stale).  Each bucket
        # preserves original record order.
        self._index: Optional[Dict[Tuple[str, str], List[TraceRecord]]] = None
        self._index_by_cat: Dict[str, List[TraceRecord]] = {}
        self._index_by_event: Dict[str, List[TraceRecord]] = {}
        self._index_len = 0

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record an event in ``category`` with arbitrary keyword fields."""
        keep = self._keep
        listeners = self._by_category.get(category)
        if not keep and not self._wildcard and not listeners:
            return  # nobody is watching: skip record construction entirely
        record = TraceRecord(self._clock(), category, event, fields)
        if keep:
            self.records.append(record)
        for listener in self._wildcard:
            listener(record)
        if listeners:
            for listener in listeners:
                listener(record)

    def enabled(self, category: str) -> bool:
        """True if an ``emit`` in ``category`` would reach a record list
        or listener — O(1); hot layers guard field construction with it."""
        return self._keep or bool(self._wildcard) or category in self._by_category

    def subscribe(
        self,
        listener: TraceListener,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Register a callback for emitted records.

        With ``categories=None`` the listener sees every record; with a
        category list it sees exactly those categories (and ``enabled``
        stays False for the rest, keeping them on the emit fast path).
        Wildcard listeners always fire before category listeners.
        """
        wanted = None if categories is None else tuple(dict.fromkeys(categories))
        self._subscriptions.append((listener, wanted))
        if wanted is None:
            self._wildcard.append(listener)
        else:
            for category in wanted:
                self._by_category.setdefault(category, []).append(listener)

    def unsubscribe(self, listener: TraceListener) -> None:
        """Remove every subscription of ``listener`` (no-op if absent)."""
        self._subscriptions = [
            (cb, cats) for cb, cats in self._subscriptions if cb is not listener
        ]
        self._wildcard = [cb for cb in self._wildcard if cb is not listener]
        for category in list(self._by_category):
            remaining = [cb for cb in self._by_category[category] if cb is not listener]
            if remaining:
                self._by_category[category] = remaining
            else:
                del self._by_category[category]

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return recorded events filtered by category and/or event name.

        Backed by a lazy ``(category, event)`` index so per-assertion
        selects in checker tests are O(matches), not O(records); the
        index is rebuilt at most once per emit/clear burst.
        """
        if category is None and event is None:
            return list(self.records)
        index = self._index
        if index is None or self._index_len != len(self.records):
            index = {}
            by_cat: Dict[str, List[TraceRecord]] = {}
            by_event: Dict[str, List[TraceRecord]] = {}
            for record in self.records:
                index.setdefault((record.category, record.event), []).append(record)
                by_cat.setdefault(record.category, []).append(record)
                by_event.setdefault(record.event, []).append(record)
            self._index = index
            self._index_by_cat = by_cat
            self._index_by_event = by_event
            self._index_len = len(self.records)
        if category is not None and event is not None:
            return list(index.get((category, event), ()))
        if category is not None:
            return list(self._index_by_cat.get(category, ()))
        assert event is not None  # both-None handled above
        return list(self._index_by_event.get(event, ()))

    def clear(self) -> None:
        """Drop all recorded events (listeners are kept)."""
        self.records.clear()
        # Length comparison cannot distinguish "cleared then refilled"
        # from "unchanged", so drop the indexes outright.
        self._index = None
        self._index_by_cat = {}
        self._index_by_event = {}
        self._index_len = 0

    def to_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write every kept record to ``path`` as JSON Lines; returns count.

        Fields that are not JSON-native (e.g. view-id objects) are
        stringified — emitters already stringify them for trace
        stability, so in practice records survive the round trip intact.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(
                    json.dumps(
                        {
                            "time": record.time,
                            "category": record.category,
                            "event": record.event,
                            "fields": record.fields,
                        },
                        sort_keys=True,
                        default=str,
                    )
                )
                fh.write("\n")
        return len(self.records)

    @classmethod
    def from_jsonl(cls, path: Union[str, "os.PathLike[str]"]) -> "Tracer":
        """Load a trace written by :meth:`to_jsonl` into a fresh tracer.

        The returned tracer is a passive record holder (its clock is
        frozen at the last loaded timestamp); use it for selection,
        dumping, merging, or replaying through a checker suite.
        """
        records: List[TraceRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                records.append(
                    TraceRecord(
                        time=int(obj["time"]),
                        category=obj["category"],
                        event=obj["event"],
                        fields=dict(obj["fields"]),
                    )
                )
        last = records[-1].time if records else 0
        tracer = cls(clock=lambda: last, keep_records=True)
        tracer.records = records
        return tracer

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump of the trace, optionally restricted by category."""
        wanted = set(categories) if categories is not None else None
        lines = [
            str(record)
            for record in self.records
            if wanted is None or record.category in wanted
        ]
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that drops everything — for hot benchmark loops."""

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0, keep_records=False)

    def emit(self, category: str, event: str, **fields: Any) -> None:  # noqa: D102
        pass
