"""Structured event tracing, shared by every runtime backend.

Protocol layers emit ``(time, category, event, fields)`` records through a
shared :class:`Tracer`.  Tests and benchmarks subscribe to categories to
observe protocol behaviour (view installations, flushes, naming-service
reconciliations) without reaching into private state.

Traces round-trip through JSON Lines (:meth:`Tracer.to_jsonl` /
:meth:`Tracer.from_jsonl`) so runs on the real-time asyncio backend can
be captured per OS process, merged, and diffed or checker-replayed
against simulator runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Union


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:>12}us] {self.category}.{self.event} {detail}".rstrip()


TraceListener = Callable[[TraceRecord], None]


class Tracer:
    """Collects trace records and fans them out to listeners.

    Recording to the in-memory list can be disabled for long benchmark
    runs (listeners still fire) via ``keep_records=False``.
    """

    def __init__(self, clock: Callable[[], int], keep_records: bool = True):
        self._clock = clock
        self._keep = keep_records
        self.records: List[TraceRecord] = []
        self._listeners: List[TraceListener] = []

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record an event in ``category`` with arbitrary keyword fields."""
        if not self._keep and not self._listeners:
            return  # nobody is watching: skip record construction entirely
        record = TraceRecord(self._clock(), category, event, fields)
        if self._keep:
            self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: TraceListener) -> None:
        """Register a callback invoked for every emitted record."""
        self._listeners.append(listener)

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return recorded events filtered by category and/or event name."""
        out: List[TraceRecord] = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Drop all recorded events (listeners are kept)."""
        self.records.clear()

    def to_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write every kept record to ``path`` as JSON Lines; returns count.

        Fields that are not JSON-native (e.g. view-id objects) are
        stringified — emitters already stringify them for trace
        stability, so in practice records survive the round trip intact.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(
                    json.dumps(
                        {
                            "time": record.time,
                            "category": record.category,
                            "event": record.event,
                            "fields": record.fields,
                        },
                        sort_keys=True,
                        default=str,
                    )
                )
                fh.write("\n")
        return len(self.records)

    @classmethod
    def from_jsonl(cls, path: Union[str, "os.PathLike[str]"]) -> "Tracer":
        """Load a trace written by :meth:`to_jsonl` into a fresh tracer.

        The returned tracer is a passive record holder (its clock is
        frozen at the last loaded timestamp); use it for selection,
        dumping, merging, or replaying through a checker suite.
        """
        records: List[TraceRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                records.append(
                    TraceRecord(
                        time=int(obj["time"]),
                        category=obj["category"],
                        event=obj["event"],
                        fields=dict(obj["fields"]),
                    )
                )
        last = records[-1].time if records else 0
        tracer = cls(clock=lambda: last, keep_records=True)
        tracer.records = records
        return tracer

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump of the trace, optionally restricted by category."""
        wanted = set(categories) if categories is not None else None
        lines = [
            str(record)
            for record in self.records
            if wanted is None or record.category in wanted
        ]
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that drops everything — for hot benchmark loops."""

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0, keep_records=False)

    def emit(self, category: str, event: str, **fields: Any) -> None:  # noqa: D102
        pass
