"""Datagram codecs for the real-time backend's UDP fabric.

The fabric originally pickled every datagram.  Pickle is convenient —
protocol messages are module-level dataclasses, picklable by
construction — but it is also the single biggest per-datagram CPU cost
on the hot path, and its frames carry class paths and field names that
the receiver already knows.  :class:`CompactCodec` replaces it with a
versioned tag-length-value encoding for the high-rate message types
(LWG ``DATA``, LWG batches, the ordered data path and its stability
acks, the naming anti-entropy descent — ``SyncRequest`` /
``SyncReply`` with their nested digest maps and mapping records — and
the naming hot path proper: client RPC ``NsRequest``/``NsResponse``
(including the §18 ``forwarded`` relay bit) and eager ``PushUpdate``
propagation, plus the zoned topology's per-round gossip
``LivenessDigest``) and keeps pickle as the fallback for the long tail of
control messages, which are rare enough that convenience wins.

Framing (network byte order throughout)::

    magic 0xC7 | version 0x01 | src: u16 len + utf8 | size: u32 | value

``value`` is one tag byte followed by a tag-specific body; composite
values (tuples, message dataclasses, the payloads nested inside them)
recurse.  The magic byte is disjoint from the first byte of every
pickle protocol-2+ frame (``0x80``), so :func:`decode_datagram` can
dispatch on it — a compact-codec process and a pickle-codec process on
the same fabric still understand each other, which keeps mixed-version
demos and rolling codec migrations safe.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Dict, List, Tuple

from ..core.messages import LwgBatch, LwgData
from ..naming.messages import NsRequest, NsResponse, PushUpdate, SyncReply, SyncRequest
from ..naming.records import MappingRecord
from ..vsync.messages import LivenessDigest, Ordered, Publish, StabilityAck
from ..vsync.view import ViewId
from .interfaces import NodeId

MAGIC = 0xC7
VERSION = 1

# Value tags.
_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03
_STR = 0x04
_BYTES = 0x05
_TUPLE = 0x06
_VIEW_ID = 0x07
_DICT = 0x08
_LWG_DATA = 0x10
_LWG_BATCH = 0x11
_PUBLISH = 0x12
_ORDERED = 0x13
_STABILITY_ACK = 0x14
_MAPPING_RECORD = 0x15
_SYNC_REQUEST = 0x16
_SYNC_REPLY = 0x17
_NS_REQUEST = 0x18
_NS_RESPONSE = 0x19
_PUSH_UPDATE = 0x1A
_LIVENESS_DIGEST = 0x1B
_PICKLE = 0x7F

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")


class CodecError(ValueError):
    """A datagram could not be decoded (truncated, bad tag, bad magic)."""


class OversizeDatagramError(ValueError):
    """An encoded datagram exceeds the fabric's ceiling.

    Carries the measured size so callers can report or split; raised by
    the fabric (which owns the ceiling), not by the codecs themselves.
    """

    def __init__(self, src: NodeId, encoded_bytes: int, limit: int):
        super().__init__(
            f"payload from {src!r} encodes to {encoded_bytes} bytes, "
            f"over the {limit}-byte datagram ceiling"
        )
        self.src = src
        self.encoded_bytes = encoded_bytes
        self.limit = limit


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def _w_str(out: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def _w_view_id(out: List[bytes], view_id: ViewId) -> None:
    _w_str(out, view_id.coordinator)
    out.append(_I64.pack(view_id.seq))


def _w_lwg_data_body(out: List[bytes], message: LwgData) -> None:
    _w_str(out, message.lwg)
    _w_view_id(out, message.view_id)
    _w_str(out, message.sender)
    _w_value(out, message.payload)
    out.append(_I64.pack(message.payload_size))


def _w_mapping_record_body(out: List[bytes], record: MappingRecord) -> None:
    _w_str(out, record.lwg)
    _w_view_id(out, record.lwg_view)
    out.append(_U32.pack(len(record.lwg_members)))
    for member in record.lwg_members:
        _w_str(out, member)
    _w_str(out, record.hwg)
    _w_view_id(out, record.hwg_view)
    out.append(_I64.pack(record.version))
    _w_str(out, record.writer)
    out.append(bytes((_TRUE if record.deleted else _FALSE,)))


def _w_value(out: List[bytes], value: Any) -> None:
    kind = type(value)
    if value is None:
        out.append(bytes((_NONE,)))
    elif kind is bool:
        out.append(bytes((_TRUE if value else _FALSE,)))
    elif kind is int and _I64_MIN <= value <= _I64_MAX:
        out.append(bytes((_INT,)))
        out.append(_I64.pack(value))
    elif kind is str:
        out.append(bytes((_STR,)))
        _w_str(out, value)
    elif kind is bytes:
        out.append(bytes((_BYTES,)))
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif kind is tuple:
        out.append(bytes((_TUPLE,)))
        out.append(_U32.pack(len(value)))
        for item in value:
            _w_value(out, item)
    elif kind is dict:
        out.append(bytes((_DICT,)))
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _w_value(out, key)
            _w_value(out, item)
    elif kind is ViewId:
        out.append(bytes((_VIEW_ID,)))
        _w_view_id(out, value)
    elif kind is MappingRecord:
        out.append(bytes((_MAPPING_RECORD,)))
        _w_mapping_record_body(out, value)
    elif kind is SyncRequest:
        out.append(bytes((_SYNC_REQUEST,)))
        _w_str(out, value.sender)
        out.append(_I64.pack(value.sync_id))
        _w_str(out, value.db_hash)
        _w_value(out, value.expansions)
        _w_value(out, value.genealogy_children)
    elif kind is SyncReply:
        out.append(bytes((_SYNC_REPLY,)))
        _w_str(out, value.sender)
        out.append(_I64.pack(value.sync_id))
        out.append(_I64.pack(value.round_no))
        out.append(bytes((_TRUE if value.in_sync else _FALSE,)))
        _w_value(out, value.expansions)
        _w_value(out, value.leaf_digests)
        _w_value(out, value.records)
        _w_value(out, value.genealogy)
        _w_value(out, value.genealogy_children)
    elif kind is NsRequest:
        out.append(bytes((_NS_REQUEST,)))
        out.append(_I64.pack(value.request_id))
        _w_str(out, value.client)
        _w_str(out, value.op)
        _w_str(out, value.lwg)
        _w_value(out, value.record)
        _w_value(out, value.parents)
        out.append(bytes((_TRUE if value.forwarded else _FALSE,)))
    elif kind is NsResponse:
        out.append(bytes((_NS_RESPONSE,)))
        out.append(_I64.pack(value.request_id))
        _w_str(out, value.server)
        out.append(_U32.pack(len(value.records)))
        for record in value.records:
            _w_mapping_record_body(out, record)
    elif kind is PushUpdate:
        out.append(bytes((_PUSH_UPDATE,)))
        _w_str(out, value.sender)
        out.append(_U32.pack(len(value.records)))
        for record in value.records:
            _w_mapping_record_body(out, record)
        _w_value(out, value.genealogy)
    elif kind is LivenessDigest:
        # The highest-rate zoned-topology message: one digest per gossip
        # round per node, fanout-multicast.  Rows are fixed-shape
        # (peer, incarnation, counter, suspect) quads.
        out.append(bytes((_LIVENESS_DIGEST,)))
        _w_str(out, value.group)
        _w_str(out, value.sender)
        out.append(_I64.pack(value.round_no))
        out.append(_U32.pack(len(value.entries)))
        for peer, incarnation, counter, suspect in value.entries:
            _w_str(out, peer)
            out.append(_I64.pack(incarnation))
            out.append(_I64.pack(counter))
            out.append(bytes((_TRUE if suspect else _FALSE,)))
    elif kind is LwgData:
        out.append(bytes((_LWG_DATA,)))
        _w_lwg_data_body(out, value)
    elif kind is LwgBatch:
        out.append(bytes((_LWG_BATCH,)))
        _w_str(out, value.lwg)
        _w_str(out, value.sender)
        out.append(_I64.pack(value.batch_seq))
        out.append(_U32.pack(len(value.entries)))
        for entry in value.entries:
            _w_lwg_data_body(out, entry)
    elif kind is Publish:
        out.append(bytes((_PUBLISH,)))
        _w_str(out, value.group)
        _w_view_id(out, value.view_id)
        _w_str(out, value.sender)
        out.append(_I64.pack(value.sender_seq))
        _w_value(out, value.payload)
        out.append(_I64.pack(value.payload_size))
        out.append(_I64.pack(value.acked_upto))
    elif kind is Ordered:
        out.append(bytes((_ORDERED,)))
        _w_str(out, value.group)
        _w_view_id(out, value.view_id)
        out.append(_I64.pack(value.seq))
        _w_str(out, value.sender)
        out.append(_I64.pack(value.sender_seq))
        _w_value(out, value.payload)
        out.append(_I64.pack(value.payload_size))
        out.append(_I64.pack(value.stable_floor))
    elif kind is StabilityAck:
        out.append(bytes((_STABILITY_ACK,)))
        _w_str(out, value.group)
        _w_view_id(out, value.view_id)
        _w_str(out, value.member)
        out.append(_I64.pack(value.delivered_upto))
    else:
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(bytes((_PICKLE,)))
        out.append(_U32.pack(len(raw)))
        out.append(raw)


# ----------------------------------------------------------------------
# Value decoding
# ----------------------------------------------------------------------
def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise CodecError(
            f"truncated datagram: need {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )


def _r_str(data: bytes, offset: int) -> Tuple[str, int]:
    _need(data, offset, 4)
    (length,) = _U32.unpack_from(data, offset)
    offset += 4
    _need(data, offset, length)
    return data[offset : offset + length].decode("utf-8"), offset + length


def _r_i64(data: bytes, offset: int) -> Tuple[int, int]:
    _need(data, offset, 8)
    (value,) = _I64.unpack_from(data, offset)
    return value, offset + 8


def _r_u32(data: bytes, offset: int) -> Tuple[int, int]:
    _need(data, offset, 4)
    (value,) = _U32.unpack_from(data, offset)
    return value, offset + 4


def _r_view_id(data: bytes, offset: int) -> Tuple[ViewId, int]:
    coordinator, offset = _r_str(data, offset)
    seq, offset = _r_i64(data, offset)
    return ViewId(coordinator, seq), offset


def _r_lwg_data_body(data: bytes, offset: int) -> Tuple[LwgData, int]:
    lwg, offset = _r_str(data, offset)
    view_id, offset = _r_view_id(data, offset)
    sender, offset = _r_str(data, offset)
    payload, offset = _r_value(data, offset)
    payload_size, offset = _r_i64(data, offset)
    return (
        LwgData(
            lwg=lwg, view_id=view_id, sender=sender,
            payload=payload, payload_size=payload_size,
        ),
        offset,
    )


def _r_mapping_record_body(data: bytes, offset: int) -> Tuple[MappingRecord, int]:
    lwg, offset = _r_str(data, offset)
    lwg_view, offset = _r_view_id(data, offset)
    count, offset = _r_u32(data, offset)
    members: List[str] = []
    for _ in range(count):
        member, offset = _r_str(data, offset)
        members.append(member)
    hwg, offset = _r_str(data, offset)
    hwg_view, offset = _r_view_id(data, offset)
    version, offset = _r_i64(data, offset)
    writer, offset = _r_str(data, offset)
    deleted, offset = _r_value(data, offset)
    return (
        MappingRecord(
            lwg=lwg, lwg_view=lwg_view, lwg_members=tuple(members),
            hwg=hwg, hwg_view=hwg_view, version=version, writer=writer,
            deleted=deleted,
        ),
        offset,
    )


def _r_value(data: bytes, offset: int) -> Tuple[Any, int]:
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _INT:
        return _r_i64(data, offset)
    if tag == _STR:
        return _r_str(data, offset)
    if tag == _BYTES:
        length, offset = _r_u32(data, offset)
        _need(data, offset, length)
        return data[offset : offset + length], offset + length
    if tag == _TUPLE:
        count, offset = _r_u32(data, offset)
        items: List[Any] = []
        for _ in range(count):
            item, offset = _r_value(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _DICT:
        count, offset = _r_u32(data, offset)
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _r_value(data, offset)
            item, offset = _r_value(data, offset)
            mapping[key] = item
        return mapping, offset
    if tag == _VIEW_ID:
        return _r_view_id(data, offset)
    if tag == _MAPPING_RECORD:
        return _r_mapping_record_body(data, offset)
    if tag == _SYNC_REQUEST:
        sender, offset = _r_str(data, offset)
        sync_id, offset = _r_i64(data, offset)
        db_hash, offset = _r_str(data, offset)
        expansions, offset = _r_value(data, offset)
        genealogy_children, offset = _r_value(data, offset)
        return (
            SyncRequest(
                sender=sender, sync_id=sync_id, db_hash=db_hash,
                expansions=expansions, genealogy_children=genealogy_children,
            ),
            offset,
        )
    if tag == _SYNC_REPLY:
        sender, offset = _r_str(data, offset)
        sync_id, offset = _r_i64(data, offset)
        round_no, offset = _r_i64(data, offset)
        in_sync, offset = _r_value(data, offset)
        expansions, offset = _r_value(data, offset)
        leaf_digests, offset = _r_value(data, offset)
        records, offset = _r_value(data, offset)
        genealogy, offset = _r_value(data, offset)
        genealogy_children, offset = _r_value(data, offset)
        return (
            SyncReply(
                sender=sender, sync_id=sync_id, round_no=round_no,
                in_sync=in_sync, expansions=expansions,
                leaf_digests=leaf_digests, records=records,
                genealogy=genealogy, genealogy_children=genealogy_children,
            ),
            offset,
        )
    if tag == _NS_REQUEST:
        request_id, offset = _r_i64(data, offset)
        client, offset = _r_str(data, offset)
        op, offset = _r_str(data, offset)
        lwg, offset = _r_str(data, offset)
        record, offset = _r_value(data, offset)
        parents, offset = _r_value(data, offset)
        forwarded, offset = _r_value(data, offset)
        return (
            NsRequest(
                request_id=request_id, client=client, op=op, lwg=lwg,
                record=record, parents=parents, forwarded=forwarded,
            ),
            offset,
        )
    if tag == _NS_RESPONSE:
        request_id, offset = _r_i64(data, offset)
        server, offset = _r_str(data, offset)
        count, offset = _r_u32(data, offset)
        ns_records: List[MappingRecord] = []
        for _ in range(count):
            record, offset = _r_mapping_record_body(data, offset)
            ns_records.append(record)
        return (
            NsResponse(
                request_id=request_id, server=server,
                records=tuple(ns_records),
            ),
            offset,
        )
    if tag == _PUSH_UPDATE:
        sender, offset = _r_str(data, offset)
        count, offset = _r_u32(data, offset)
        push_records: List[MappingRecord] = []
        for _ in range(count):
            record, offset = _r_mapping_record_body(data, offset)
            push_records.append(record)
        genealogy, offset = _r_value(data, offset)
        return (
            PushUpdate(
                sender=sender, records=tuple(push_records),
                genealogy=genealogy,
            ),
            offset,
        )
    if tag == _LIVENESS_DIGEST:
        group, offset = _r_str(data, offset)
        sender, offset = _r_str(data, offset)
        round_no, offset = _r_i64(data, offset)
        count, offset = _r_u32(data, offset)
        rows: List[Tuple[str, int, int, bool]] = []
        for _ in range(count):
            peer, offset = _r_str(data, offset)
            incarnation, offset = _r_i64(data, offset)
            counter, offset = _r_i64(data, offset)
            suspect, offset = _r_value(data, offset)
            rows.append((peer, incarnation, counter, suspect))
        return (
            LivenessDigest(
                group=group, sender=sender, round_no=round_no,
                entries=tuple(rows),
            ),
            offset,
        )
    if tag == _LWG_DATA:
        return _r_lwg_data_body(data, offset)
    if tag == _LWG_BATCH:
        lwg, offset = _r_str(data, offset)
        sender, offset = _r_str(data, offset)
        batch_seq, offset = _r_i64(data, offset)
        count, offset = _r_u32(data, offset)
        entries: List[LwgData] = []
        for _ in range(count):
            entry, offset = _r_lwg_data_body(data, offset)
            entries.append(entry)
        return (
            LwgBatch(
                lwg=lwg, sender=sender, batch_seq=batch_seq,
                entries=tuple(entries),
            ),
            offset,
        )
    if tag == _PUBLISH:
        group, offset = _r_str(data, offset)
        view_id, offset = _r_view_id(data, offset)
        sender, offset = _r_str(data, offset)
        sender_seq, offset = _r_i64(data, offset)
        payload, offset = _r_value(data, offset)
        payload_size, offset = _r_i64(data, offset)
        acked_upto, offset = _r_i64(data, offset)
        return (
            Publish(
                group=group, view_id=view_id, sender=sender,
                sender_seq=sender_seq, payload=payload,
                payload_size=payload_size, acked_upto=acked_upto,
            ),
            offset,
        )
    if tag == _ORDERED:
        group, offset = _r_str(data, offset)
        view_id, offset = _r_view_id(data, offset)
        seq, offset = _r_i64(data, offset)
        sender, offset = _r_str(data, offset)
        sender_seq, offset = _r_i64(data, offset)
        payload, offset = _r_value(data, offset)
        payload_size, offset = _r_i64(data, offset)
        stable_floor, offset = _r_i64(data, offset)
        return (
            Ordered(
                group=group, view_id=view_id, seq=seq, sender=sender,
                sender_seq=sender_seq, payload=payload,
                payload_size=payload_size, stable_floor=stable_floor,
            ),
            offset,
        )
    if tag == _STABILITY_ACK:
        group, offset = _r_str(data, offset)
        view_id, offset = _r_view_id(data, offset)
        member, offset = _r_str(data, offset)
        delivered_upto, offset = _r_i64(data, offset)
        return (
            StabilityAck(
                group=group, view_id=view_id, member=member,
                delivered_upto=delivered_upto,
            ),
            offset,
        )
    if tag == _PICKLE:
        length, offset = _r_u32(data, offset)
        _need(data, offset, length)
        return pickle.loads(data[offset : offset + length]), offset + length
    raise CodecError(f"unknown value tag 0x{tag:02x} at offset {offset - 1}")


# ----------------------------------------------------------------------
# Datagram framing
# ----------------------------------------------------------------------
def encode_compact(src: NodeId, payload: Any, size: int) -> bytes:
    """Frame one datagram in the compact format."""
    out: List[bytes] = [bytes((MAGIC, VERSION))]
    raw_src = src.encode("utf-8")
    out.append(_U16.pack(len(raw_src)))
    out.append(raw_src)
    out.append(_U32.pack(size))
    _w_value(out, payload)
    return b"".join(out)


def decode_datagram(data: bytes) -> Tuple[NodeId, Any, int]:
    """Decode a datagram in either wire format (dispatch on magic byte)."""
    if not data:
        raise CodecError("empty datagram")
    if data[0] != MAGIC:
        try:
            src, payload, size = pickle.loads(data)
        except Exception as exc:
            raise CodecError(f"undecodable datagram: {exc}") from exc
        return src, payload, size
    _need(data, 0, 2)
    if data[1] != VERSION:
        raise CodecError(f"unsupported compact-codec version {data[1]}")
    offset = 2
    _need(data, offset, 2)
    (src_len,) = _U16.unpack_from(data, offset)
    offset += 2
    _need(data, offset, src_len)
    src = data[offset : offset + src_len].decode("utf-8")
    offset += src_len
    size, offset = _r_u32(data, offset)
    payload, offset = _r_value(data, offset)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after payload")
    return src, payload, size


class PickleCodec:
    """The original blanket-pickle wire format."""

    name = "pickle"

    def encode(self, src: NodeId, payload: Any, size: int) -> bytes:
        return pickle.dumps((src, payload, size), protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Tuple[NodeId, Any, int]:
        return decode_datagram(data)


class CompactCodec:
    """Tag-length-value encoding for hot messages, pickle for the rest."""

    name = "compact"

    def encode(self, src: NodeId, payload: Any, size: int) -> bytes:
        return encode_compact(src, payload, size)

    def decode(self, data: bytes) -> Tuple[NodeId, Any, int]:
        return decode_datagram(data)


#: Either codec satisfies the fabric's needs; both decode both formats.
DatagramCodec = PickleCodec | CompactCodec

_CODECS: Dict[str, Callable[[], DatagramCodec]] = {
    "pickle": PickleCodec,
    "compact": CompactCodec,
}


def make_codec(name: str) -> DatagramCodec:
    """Codec instance by CLI name (``pickle`` or ``compact``)."""
    try:
        factory = _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; expected one of {sorted(_CODECS)}"
        ) from None
    return factory()
