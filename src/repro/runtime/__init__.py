"""Backend-agnostic runtime layer.

Everything above the wire — the reliable transport, the virtual-synchrony
stack, the naming service and the LWG service — depends only on the
narrow protocols defined here: a :class:`~repro.runtime.interfaces.Clock`,
a :class:`~repro.runtime.interfaces.Scheduler` (timers with
cancellation), a :class:`~repro.runtime.interfaces.Fabric` (per-node
attach / send / multicast with partition drop-filters) and the
:class:`~repro.runtime.interfaces.Runtime` bundle that also carries the
:class:`~repro.runtime.rng.RngRegistry` and
:class:`~repro.runtime.trace.Tracer`.

Two backends implement the protocols:

* ``repro.sim`` — the deterministic discrete-event backend
  (:class:`~repro.sim.process.SimRuntime`), where time is simulated and
  every run replays bit-identically from its seed;
* :mod:`repro.runtime.asyncio_backend` — a real-time backend
  (:class:`~repro.runtime.asyncio_backend.AsyncioRuntime`) over
  wall-clock asyncio timers and UDP datagrams on localhost, so the same
  unmodified protocol code runs between live OS processes.
"""

from .interfaces import (
    MS,
    SECOND,
    Addressing,
    Clock,
    DeliveryCallback,
    Fabric,
    FailureFeed,
    NodeId,
    Runtime,
    Scheduler,
    TimerHandle,
)
from .rng import RngRegistry
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "MS",
    "SECOND",
    "Addressing",
    "Clock",
    "DeliveryCallback",
    "Fabric",
    "FailureFeed",
    "NodeId",
    "NullTracer",
    "RngRegistry",
    "Runtime",
    "Scheduler",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
]
