"""Seeded, stream-split randomness for deterministic simulations.

A single :class:`RngRegistry` is created per simulation from one root
seed.  Components ask for *named streams* (``registry.stream("net.latency")``)
so that adding a new consumer of randomness never perturbs the draws seen
by existing components — runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named, independently-seeded random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always maps to the same deterministic sequence for a
        given root seed, regardless of creation order.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per scenario repetition)."""
        return RngRegistry(_derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
