"""Real-time runtime backend: asyncio timers and UDP datagrams.

This is the second implementation of the :mod:`repro.runtime` protocols.
Where the simulator models the paper's testbed, this backend *is* a tiny
testbed: timers come from the event loop's wall clock, and every node
owns a real UDP socket on localhost, so the same unmodified protocol
code (failure detector, HWG membership, LWG service, naming) runs
between live OS processes.

Design notes:

* **Time** is integer microseconds since a configurable epoch on
  ``CLOCK_MONOTONIC``.  On Linux that clock is system-wide, so multiple
  OS processes given the same epoch produce directly comparable trace
  timestamps — which is what lets the demo merge per-process JSONL
  traces and replay them through the invariant checkers.
* **Partitions** are a userspace drop-filter (no iptables, no root):
  :meth:`UdpFabric.set_partitions` assigns nodes to blocks and datagrams
  crossing blocks are dropped on *both* the send and the receive path.
  Receive-side filtering is what makes cross-process partitions work —
  each process installs the same block map and discards traffic from the
  other side, regardless of what the sender believed when it transmitted
  (this also cuts messages already in flight, like the simulator does).
* **Group addressing** is broadcast: :class:`BroadcastAddressing`
  reports every fabric node as a potential subscriber and receivers
  filter, exactly the split UDP broadcast on a shared medium gives you.
  A process with no endpoint for a group silently ignores its traffic
  (see ``ProtocolStack._dispatch``), so probes and presence beacons
  reach group members without any cross-process registry.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .codec import DatagramCodec, OversizeDatagramError, PickleCodec, make_codec
from .interfaces import Addressing, DeliveryCallback, NodeId
from .rng import RngRegistry
from .trace import Tracer

#: Address of one node's UDP endpoint.
HostPort = Tuple[str, int]


class WallClock:
    """Integer-microsecond wall clock on ``CLOCK_MONOTONIC``.

    Processes that share an ``epoch`` (a ``time.monotonic()`` value)
    produce comparable timestamps on the same host.
    """

    def __init__(self, epoch: Optional[float] = None):
        self._epoch = time.monotonic() if epoch is None else epoch

    @property
    def epoch(self) -> float:
        """The ``time.monotonic()`` instant this clock calls zero."""
        return self._epoch

    @property
    def now(self) -> int:
        return int((time.monotonic() - self._epoch) * 1_000_000)


class AsyncioTimerHandle:
    """Cancellation handle for a timer on the event loop."""

    __slots__ = ("_handle", "fired", "cancelled")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self.fired = False
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def pending(self) -> bool:
        return not (self.fired or self.cancelled)


class AsyncioScheduler:
    """One-shot microsecond timers over ``loop.call_later``."""

    def __init__(self, loop: asyncio.AbstractEventLoop, clock: WallClock):
        self._loop = loop
        self._clock = clock

    def schedule(
        self, delay: int, callback: Callable[[], None]
    ) -> AsyncioTimerHandle:
        handle = AsyncioTimerHandle()

        def fire() -> None:
            handle.fired = True
            callback()

        handle._handle = self._loop.call_later(max(0, delay) / 1_000_000, fire)
        return handle

    def schedule_at(
        self, time: int, callback: Callable[[], None]
    ) -> AsyncioTimerHandle:
        return self.schedule(max(0, time - self._clock.now), callback)


class UdpFabric:
    """A message fabric of real UDP sockets on localhost.

    ``node_addrs`` maps node ids to ``(host, port)`` endpoints; nodes
    attached without a mapping bind an ephemeral port and the chosen
    address is recorded, so a single-process fabric needs no
    configuration at all.  For multi-process operation every process is
    given the same full map and attaches only its local nodes.

    Datagrams carry ``(src, payload, size)`` framed by the fabric's
    ``codec`` — blanket pickle by default, or the compact tag-length-
    value format of :mod:`repro.runtime.codec`.  Decoding dispatches on
    the frame's magic byte, so processes running different codecs on one
    fabric still interoperate.
    """

    #: Conservative ceiling under the 64 KiB UDP datagram limit.
    MAX_DATAGRAM = 60_000
    #: Receive buffer large enough to absorb protocol bursts.
    RCVBUF = 1 << 20

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        tracer: Tracer,
        node_addrs: Optional[Dict[NodeId, HostPort]] = None,
        host: str = "127.0.0.1",
        codec: Optional[DatagramCodec] = None,
    ):
        self._loop = loop
        self.tracer = tracer
        self.host = host
        self.codec: DatagramCodec = codec if codec is not None else PickleCodec()
        #: Known endpoints, local and remote.  Updated as nodes attach.
        self.addrs: Dict[NodeId, HostPort] = dict(node_addrs or {})
        self._sockets: Dict[NodeId, socket.socket] = {}
        self._callbacks: Dict[NodeId, DeliveryCallback] = {}
        self._alive: Dict[NodeId, bool] = {}
        self._partition_of: Dict[NodeId, int] = {}
        # Counters, mirroring the simulated Network for metric parity.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, node: NodeId, callback: DeliveryCallback) -> None:
        """Bind ``node``'s socket and register its delivery callback."""
        if node in self._sockets:
            self._callbacks[node] = callback
            self._alive[node] = True
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, self.RCVBUF)
        sock.bind(self.addrs.get(node, (self.host, 0)))
        sock.setblocking(False)
        self.addrs[node] = sock.getsockname()[:2]
        self._sockets[node] = sock
        self._callbacks[node] = callback
        self._alive[node] = True
        self._partition_of.setdefault(node, 0)
        self._loop.add_reader(sock.fileno(), self._on_readable, node, sock)

    def detach(self, node: NodeId) -> None:
        """Close ``node``'s socket and remove it from the fabric."""
        sock = self._sockets.pop(node, None)
        if sock is not None:
            self._loop.remove_reader(sock.fileno())
            sock.close()
        self._callbacks.pop(node, None)
        self._alive.pop(node, None)
        self._partition_of.pop(node, None)
        self.addrs.pop(node, None)

    def close(self) -> None:
        """Detach every local node (teardown)."""
        for node in list(self._sockets):
            self.detach(node)

    @property
    def nodes(self) -> List[NodeId]:
        """All known node ids — attached locally or mapped remotely."""
        return sorted(set(self._callbacks) | set(self.addrs))

    def local_nodes(self) -> List[NodeId]:
        """Node ids attached in this process."""
        return sorted(self._callbacks)

    # ------------------------------------------------------------------
    # Liveness (crash/recovery)
    # ------------------------------------------------------------------
    def is_alive(self, node: NodeId) -> bool:
        """True unless the node is locally attached and crashed.

        Remote nodes (mapped but not attached here) are assumed alive:
        their own process is the authority on their liveness, and its
        drop-filter enforces it.
        """
        if node in self._callbacks:
            return self._alive.get(node, False)
        return node in self.addrs

    def has_node(self, node: NodeId) -> bool:
        return node in self._callbacks or node in self.addrs

    def set_alive(self, node: NodeId, alive: bool) -> None:
        if node not in self._callbacks:
            raise KeyError(f"node {node!r} is not attached in this process")
        self._alive[node] = alive
        self.tracer.emit("network", "crash" if not alive else "recover", node=node)

    # ------------------------------------------------------------------
    # Partitions (userspace drop-filter)
    # ------------------------------------------------------------------
    def set_partitions(self, blocks: Sequence[Iterable[NodeId]]) -> None:
        """Install the drop-filter.  Unnamed nodes join block 0."""
        assignment: Dict[NodeId, int] = {}
        for index, block in enumerate(blocks):
            for node in block:
                if node in assignment:
                    raise ValueError(f"node {node!r} appears in two partition blocks")
                assignment[node] = index
        for node in self.nodes:
            self._partition_of[node] = assignment.get(node, 0)
        self.tracer.emit(
            "network", "partition",
            blocks=[sorted(n for n in self.nodes if self._partition_of[n] == i)
                    for i in range(len(blocks) or 1)],
        )

    def heal(self) -> None:
        for node in self._partition_of:
            self._partition_of[node] = 0
        self.tracer.emit("network", "heal")

    def partition_blocks(self) -> List[FrozenSet[NodeId]]:
        by_block: Dict[int, Set[NodeId]] = {}
        for node in self.nodes:
            by_block.setdefault(self._partition_of.get(node, 0), set()).add(node)
        return [frozenset(nodes) for _, nodes in sorted(by_block.items())]

    def reachable(self, a: NodeId, b: NodeId) -> bool:
        return (
            self.is_alive(a)
            and self.is_alive(b)
            and self._partition_of.get(a, 0) == self._partition_of.get(b, 0)
        )

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _encode(self, src: NodeId, payload: Any, size: int) -> bytes:
        data = self.codec.encode(src, payload, size)
        if len(data) > self.MAX_DATAGRAM:
            raise OversizeDatagramError(src, len(data), self.MAX_DATAGRAM)
        return data

    def _tx_socket(self, src: NodeId) -> socket.socket:
        sock = self._sockets.get(src)
        if sock is None:
            raise KeyError(f"sender {src!r} is not attached in this process")
        return sock

    def _sendto(self, sock: socket.socket, data: bytes, dst: NodeId) -> bool:
        addr = self.addrs.get(dst)
        if addr is None:
            return False
        try:
            sock.sendto(data, addr)
        except OSError:
            return False  # transient kernel-buffer pressure: UDP may drop
        return True

    def send(self, src: NodeId, dst: NodeId, payload: Any, size: int = 256) -> bool:
        """Send a unicast datagram.  Returns False if dropped at the source."""
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            return False
        if not self._sendto(self._tx_socket(src), self._encode(src, payload, size), dst):
            self.messages_dropped += 1
            return False
        return True

    def multicast(
        self, src: NodeId, dsts: Iterable[NodeId], payload: Any, size: int = 256
    ) -> int:
        """Send one payload to many destinations (one datagram each).

        Loopback to ``src`` goes through the socket like any other
        destination, preserving the asynchronous-delivery contract.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.is_alive(src):
            self.messages_dropped += 1
            return 0
        sock = self._tx_socket(src)
        data = self._encode(src, payload, size)
        sent = 0
        for dst in sorted(set(dsts)):
            if dst != src and not self.reachable(src, dst):
                continue
            if self._sendto(sock, data, dst):
                sent += 1
        return sent

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def _on_readable(self, node: NodeId, sock: socket.socket) -> None:
        while True:
            try:
                data, _ = sock.recvfrom(self.MAX_DATAGRAM + 4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us during teardown
            try:
                src, payload, size = self.codec.decode(data)
            except Exception:
                self.messages_dropped += 1
                continue
            # Receive-side drop-filter: enforces THIS process's view of
            # partitions and liveness, whatever the sender believed.
            if not self.reachable(src, node):
                self.messages_dropped += 1
                continue
            callback = self._callbacks.get(node)
            if callback is None or not self._alive.get(node, False):
                self.messages_dropped += 1
                continue
            self.messages_delivered += 1
            callback(src, payload, size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UdpFabric(local={len(self._sockets)}, known={len(self.nodes)}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )


class BroadcastAddressing:
    """Group addressing with UDP-broadcast semantics.

    ``subscribers`` reports *every* fabric node: transmissions reach the
    whole medium and receivers filter (a stack with no endpoint for the
    group drops the message).  Local subscriptions are still tracked so
    ``groups_of`` works for teardown and debugging.
    """

    def __init__(self, fabric: UdpFabric):
        self._fabric = fabric
        self._local: Dict[str, Set[NodeId]] = {}

    def subscribe(self, group: str, node: NodeId) -> None:
        self._local.setdefault(group, set()).add(node)

    def unsubscribe(self, group: str, node: NodeId) -> None:
        members = self._local.get(group)
        if members is not None:
            members.discard(node)
            if not members:
                del self._local[group]

    def unsubscribe_all(self, node: NodeId) -> None:
        for group in list(self._local):
            self.unsubscribe(group, node)

    def subscribers(self, group: str) -> Set[NodeId]:
        return set(self._fabric.nodes)

    def groups_of(self, node: NodeId) -> Set[str]:
        return {g for g, members in self._local.items() if node in members}


class LocalFailures:
    """Crash/recovery feed for locally attached nodes."""

    def __init__(self, fabric: UdpFabric):
        self.fabric = fabric
        self._hooks: Dict[NodeId, List[Callable[[bool], None]]] = {}

    def on_transition(self, node: NodeId, hook: Callable[[bool], None]) -> None:
        self._hooks.setdefault(node, []).append(hook)

    def crash_now(self, node: NodeId) -> None:
        self._apply(node, crash=True)

    def recover_now(self, node: NodeId) -> None:
        self._apply(node, crash=False)

    def _apply(self, node: NodeId, crash: bool) -> None:
        want_alive = not crash
        if self.fabric.has_node(node) and self.fabric.is_alive(node) == want_alive:
            return  # no-op transitions must not re-fire the hooks
        self.fabric.set_alive(node, want_alive)
        for hook in self._hooks.get(node, []):
            hook(crash)


class AsyncioRuntime:
    """The real-time :class:`~repro.runtime.interfaces.Runtime` bundle."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        wall_clock: WallClock,
        udp_fabric: UdpFabric,
        rng: RngRegistry,
        tracer: Tracer,
        failures: LocalFailures,
    ):
        self.loop = loop
        self._clock = wall_clock
        self._scheduler = AsyncioScheduler(loop, wall_clock)
        self._fabric = udp_fabric
        self._rng = rng
        self._tracer = tracer
        self._failures = failures

    @classmethod
    def create(
        cls,
        seed: int = 0,
        node_addrs: Optional[Dict[NodeId, HostPort]] = None,
        keep_trace: bool = True,
        epoch: Optional[float] = None,
        host: str = "127.0.0.1",
        codec: str = "pickle",
    ) -> "AsyncioRuntime":
        """Build a fresh real-time runtime.

        Pass the same ``epoch`` (a ``time.monotonic()`` value) and
        ``node_addrs`` map to every cooperating OS process.  ``codec``
        picks the datagram wire format (``pickle`` or ``compact``);
        receivers understand both, so processes need not agree.
        """
        loop = asyncio.new_event_loop()
        clock = WallClock(epoch)
        rng = RngRegistry(seed)
        tracer = Tracer(clock=lambda: clock.now, keep_records=keep_trace)
        fabric = UdpFabric(
            loop, tracer, node_addrs=node_addrs, host=host, codec=make_codec(codec)
        )
        failures = LocalFailures(fabric)
        return cls(loop, clock, fabric, rng, tracer, failures)

    # ------------------------------------------------------------------
    # Runtime protocol surface
    # ------------------------------------------------------------------
    @property
    def clock(self) -> WallClock:
        return self._clock

    @property
    def scheduler(self) -> AsyncioScheduler:
        return self._scheduler

    @property
    def fabric(self) -> UdpFabric:
        return self._fabric

    @property
    def rng(self) -> RngRegistry:
        return self._rng

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def failures(self) -> LocalFailures:
        return self._failures

    @property
    def now(self) -> int:
        return self._clock.now

    def run_for(self, duration_us: int) -> None:
        """Run the event loop for ``duration_us`` of wall time."""
        if duration_us > 0:
            self.loop.run_until_complete(asyncio.sleep(duration_us / 1_000_000))

    def group_addressing(self) -> Addressing:
        return BroadcastAddressing(self._fabric)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every socket and the event loop."""
        self._fabric.close()
        if not self.loop.is_closed():
            self.loop.close()

    def __enter__(self) -> "AsyncioRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def free_udp_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``count`` currently-free UDP ports on ``host``.

    Used by multi-process launchers to build a shared ``node_addrs`` map
    before forking.  The ports are released before returning, so a
    (small) window for reuse exists — acceptable for demos and tests on
    localhost.
    """
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()
