"""Backend demo: one scripted scenario, two runtimes.

The scenario is the paper's core story in miniature: two application
processes join a light-weight group, exchange totally-ordered data,
get split by a network partition (each side carries on in its own
view), and merge back into one view when the partition heals.

``run_sim_demo`` runs it single-process on the deterministic simulator.
``run_asyncio_demo`` runs it between two *live OS processes* — each
child owns real UDP sockets and wall-clock timers, the partition is the
fabric's userspace drop-filter (no iptables), and the parent merges the
children's JSONL traces and replays them through the invariant
checkers.  Both are wired to ``python -m repro run --backend {sim,asyncio}``.

The children align on a shared ``CLOCK_MONOTONIC`` epoch, so the
scripted checkpoints below happen at the same wall instant in both
processes — in particular both install the same partition drop-filter
at (wall-clock) T_PARTITION and heal it at T_HEAL.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.service import LwgListener
from .interfaces import SECOND, NodeId, Runtime
from .trace import TraceRecord, Tracer

#: Scripted wall/virtual-time checkpoints, microseconds from epoch.
T_JOIN = int(0.5 * SECOND)
T_JOINED = 6 * SECOND        # both members visible; pre-partition sends
T_PARTITION = 8 * SECOND
T_SPLIT = 14 * SECOND        # each side settled in its own view
T_HEAL = 16 * SECOND
T_MERGED = 28 * SECOND       # one view again; post-heal sends
T_END = 30 * SECOND

GROUP = "chat"
BLOCKS: List[List[NodeId]] = [["ns0", "p0"], ["p1"]]
ALL_NODES: List[NodeId] = ["ns0", "p0", "p1"]


class RecordingListener(LwgListener):
    """LWG listener collecting views and delivered payloads."""

    def __init__(self) -> None:
        self.views: List[Any] = []
        self.data: List[Tuple[str, Any]] = []

    def on_view(self, lwg: str, view: Any) -> None:
        self.views.append(view)

    def on_data(self, lwg: str, src: str, payload: Any, size: int) -> None:
        self.data.append((src, payload))

    def on_left(self, lwg: str) -> None:
        pass

    def get_state(self, lwg: str) -> Any:
        return None

    def on_state(self, lwg: str, state: Any) -> None:
        pass

    def payloads_from(self, peer: str) -> List[Any]:
        return [payload for src, payload in self.data if src == peer]


def wait_until(
    env: Runtime,
    predicate: Callable[[], bool],
    deadline_us: int,
    step_us: int = 50_000,
) -> bool:
    """Drive ``env`` in small steps until ``predicate`` or the deadline."""
    while env.now < deadline_us:
        if predicate():
            return True
        env.run_for(min(step_us, deadline_us - env.now))
    return predicate()


def advance_to(env: Runtime, time_us: int) -> None:
    """Drive ``env`` up to the absolute checkpoint ``time_us``."""
    if time_us > env.now:
        env.run_for(time_us - env.now)


def _members(handle: Any) -> Tuple[str, ...]:
    view = handle.view
    return tuple(sorted(view.members)) if view is not None else ()


class ScenarioFailure(RuntimeError):
    """A scripted checkpoint was not reached in time."""


def _run_process_script(
    env: Runtime,
    node: NodeId,
    service: Any,
    peer: NodeId,
    say: Callable[[str], None],
) -> None:
    """The per-application-process half of the scripted scenario.

    Runs identically on both backends and, for the asyncio backend, in
    whichever OS process hosts ``node``.  Raises :class:`ScenarioFailure`
    on a missed checkpoint.
    """
    listener = RecordingListener()
    advance_to(env, T_JOIN)
    handle = service.join(GROUP, listener)
    say(f"{node}: joining {GROUP!r}")

    both = tuple(sorted((node, peer)))
    if not wait_until(env, lambda: _members(handle) == both, T_JOINED):
        raise ScenarioFailure(
            f"{node}: no common view by T_JOINED, members={_members(handle)}"
        )
    say(f"{node}: joined, view members {_members(handle)}")
    handle.send(f"hello from {node}")

    advance_to(env, T_PARTITION)
    env.fabric.set_partitions(BLOCKS)
    say(f"{node}: partition installed {BLOCKS}")

    if not wait_until(env, lambda: _members(handle) == (node,), T_SPLIT):
        raise ScenarioFailure(
            f"{node}: not a singleton view by T_SPLIT, members={_members(handle)}"
        )
    say(f"{node}: carrying on in own partition view")
    handle.send(f"{node} during partition")

    advance_to(env, T_HEAL)
    env.fabric.heal()
    say(f"{node}: partition healed")

    if not wait_until(env, lambda: _members(handle) == both, T_MERGED):
        raise ScenarioFailure(
            f"{node}: views did not merge by T_MERGED, members={_members(handle)}"
        )
    say(f"{node}: merged, view members {_members(handle)}")
    handle.send(f"post-heal from {node}")

    advance_to(env, T_END)
    wanted = f"post-heal from {peer}"
    if wanted not in listener.payloads_from(peer):
        raise ScenarioFailure(
            f"{node}: never delivered {wanted!r}; got {listener.data}"
        )
    say(f"{node}: delivered post-heal data from {peer}")


# ----------------------------------------------------------------------
# Simulator backend
# ----------------------------------------------------------------------
def run_sim_demo(seed: int = 7, quiet: bool = False) -> int:
    """The scripted scenario on the deterministic simulator."""
    from ..workloads.cluster import Cluster

    say = (lambda text: None) if quiet else print
    cluster = Cluster(2, seed=seed, num_name_servers=1)
    # Interleave both processes' scripts step by step: drive them from
    # one timeline since a single simulation hosts every node.
    listeners = {node: RecordingListener() for node in ("p0", "p1")}
    advance_to(cluster.env, T_JOIN)
    handles = {
        node: cluster.service(node).join(GROUP, listeners[node])
        for node in ("p0", "p1")
    }
    say("sim: p0 and p1 joining 'chat'")
    ok = wait_until(
        cluster.env,
        lambda: all(_members(h) == ("p0", "p1") for h in handles.values()),
        T_JOINED,
    )
    if not ok:
        print("sim: join did not converge", file=sys.stderr)
        return 1
    say("sim: common view installed")
    for node, handle in handles.items():
        handle.send(f"hello from {node}")

    advance_to(cluster.env, T_PARTITION)
    cluster.env.fabric.set_partitions(BLOCKS)
    say(f"sim: partition {BLOCKS}")
    ok = wait_until(
        cluster.env,
        lambda: all(_members(h) == (n,) for n, h in handles.items()),
        T_SPLIT,
    )
    if not ok:
        print("sim: partition views did not settle", file=sys.stderr)
        return 1
    say("sim: each side in its own view")
    for node, handle in handles.items():
        handle.send(f"{node} during partition")

    advance_to(cluster.env, T_HEAL)
    cluster.env.fabric.heal()
    say("sim: healed")
    ok = wait_until(
        cluster.env,
        lambda: all(_members(h) == ("p0", "p1") for h in handles.values()),
        T_MERGED,
    )
    if not ok:
        print("sim: views did not merge after heal", file=sys.stderr)
        return 1
    say("sim: merged back into one view")
    for node, handle in handles.items():
        handle.send(f"post-heal from {node}")
    advance_to(cluster.env, T_END)

    for node, peer in (("p0", "p1"), ("p1", "p0")):
        if f"post-heal from {peer}" not in listeners[node].payloads_from(peer):
            print(f"sim: {node} missed post-heal data from {peer}", file=sys.stderr)
            return 1
    cluster.check_invariants()
    say("sim: post-heal data delivered both ways; invariants hold")
    return 0


# ----------------------------------------------------------------------
# Asyncio backend — child process
# ----------------------------------------------------------------------
def _child_main(
    role: str,
    epoch: float,
    addrs: Dict[NodeId, Tuple[str, int]],
    out_path: str,
    seed: int,
    codec: str = "pickle",
) -> int:
    """One OS process of the demo: child A hosts ns0+p0, child B hosts p1."""
    from ..core.baselines import make_dynamic_service
    from ..naming.client import NamingClient
    from ..naming.server import NameServer
    from ..vsync.stack import ProtocolStack
    from .asyncio_backend import AsyncioRuntime

    node = "p0" if role == "A" else "p1"
    peer = "p1" if role == "A" else "p0"

    # Start barrier: construct the runtime only once the shared epoch is
    # reached so both children's clocks start at (about) zero together.
    delay = epoch - time.monotonic()
    if delay > 0:
        time.sleep(delay)

    env = AsyncioRuntime.create(seed=seed, node_addrs=addrs, epoch=epoch, codec=codec)
    try:
        addressing = env.group_addressing()
        if role == "A":
            NameServer(env, "ns0", peers=["ns0"])
        stack = ProtocolStack(env, node, addressing)
        client = NamingClient(stack, ["ns0"])
        service = make_dynamic_service(stack, client)

        def say(text: str) -> None:
            print(f"[child {role}] {text}", flush=True)

        try:
            _run_process_script(env, node, service, peer, say)
            status = 0
        except ScenarioFailure as failure:
            print(f"[child {role}] FAILED: {failure}", file=sys.stderr, flush=True)
            status = 1
        env.tracer.to_jsonl(out_path)
        return status
    finally:
        env.close()


# ----------------------------------------------------------------------
# Asyncio backend — parent process
# ----------------------------------------------------------------------
def merge_traces(paths: Sequence[str]) -> List[TraceRecord]:
    """Merge per-process JSONL traces into one time-ordered record list.

    The sort is stable and keyed on (time, source index), so each
    process's own records keep their causal order; cross-process order
    follows the shared monotonic clock.
    """
    keyed: List[Tuple[int, int, int, TraceRecord]] = []
    for index, path in enumerate(paths):
        for position, record in enumerate(Tracer.from_jsonl(path).records):
            keyed.append((record.time, index, position, record))
    keyed.sort(key=lambda item: item[:3])
    return [record for _, _, _, record in keyed]


def replay_through_checkers(records: Sequence[TraceRecord]) -> List[str]:
    """Run merged records through the standard checker suite."""
    from ..checkers import CheckerSuite

    suite = CheckerSuite.standard(raise_immediately=False)
    for record in records:
        suite.on_record(record)
    return [str(violation) for violation in suite.violations]


def run_asyncio_demo(
    seed: int = 7, out_dir: Optional[str] = None, codec: str = "pickle"
) -> int:
    """The scripted scenario across two live OS processes over UDP."""
    from .asyncio_backend import free_udp_ports

    ports = free_udp_ports(len(ALL_NODES))
    addrs = {node: ("127.0.0.1", port) for node, port in zip(ALL_NODES, ports)}
    addr_spec = ",".join(f"{n}=127.0.0.1:{p}" for n, p in zip(ALL_NODES, ports))
    epoch = time.monotonic() + 1.5  # start barrier: cover child startup

    workdir = Path(out_dir) if out_dir else Path(tempfile.mkdtemp(prefix="repro-demo-"))
    workdir.mkdir(parents=True, exist_ok=True)
    traces = {role: workdir / f"trace-{role}.jsonl" for role in ("A", "B")}

    children = {
        role: subprocess.Popen(
            [
                sys.executable, "-m", "repro.runtime.demo",
                "--child", role,
                "--epoch", repr(epoch),
                "--addrs", addr_spec,
                "--seed", str(seed),
                "--out", str(traces[role]),
                "--codec", codec,
            ],
        )
        for role in ("A", "B")
    }
    print(f"parent: spawned children {', '.join(str(c.pid) for c in children.values())}")

    status = 0
    budget = T_END / SECOND + 20  # scripted length plus startup/teardown slack
    deadline = time.monotonic() + budget
    for role, child in children.items():
        try:
            code = child.wait(timeout=max(1.0, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()
            print(f"parent: child {role} timed out", file=sys.stderr)
            status = 1
            continue
        if code != 0:
            print(f"parent: child {role} exited {code}", file=sys.stderr)
            status = 1

    existing = [str(path) for path in traces.values() if path.exists()]
    if len(existing) != len(traces):
        print("parent: missing child trace files", file=sys.stderr)
        return 1
    records = merge_traces(existing)
    violations = replay_through_checkers(records)
    views = [r for r in records if r.event == "lwg_view_installed"]
    print(
        f"parent: merged {len(records)} trace records "
        f"({len(views)} LWG view installs); traces in {workdir}"
    )
    for line in violations:
        print(f"parent: CHECKER VIOLATION: {line}", file=sys.stderr)
    if violations:
        status = 1
    print("parent: demo " + ("PASSED" if status == 0 else "FAILED"))
    return status


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def _parse_addrs(spec: str) -> Dict[NodeId, Tuple[str, int]]:
    addrs: Dict[NodeId, Tuple[str, int]] = {}
    for part in spec.split(","):
        node, _, hostport = part.partition("=")
        host, _, port = hostport.rpartition(":")
        addrs[node] = (host, int(port))
    return addrs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.demo",
        description="partition/heal demo on the sim or asyncio backend",
    )
    parser.add_argument("--backend", choices=("sim", "asyncio"), default="sim")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out-dir", default=None, help="directory for JSONL traces")
    parser.add_argument(
        "--codec", choices=("pickle", "compact"), default="pickle",
        help="datagram wire format for the asyncio backend",
    )
    # Internal: children of the asyncio demo re-enter through this module.
    parser.add_argument("--child", choices=("A", "B"), help=argparse.SUPPRESS)
    parser.add_argument("--epoch", type=float, help=argparse.SUPPRESS)
    parser.add_argument("--addrs", help=argparse.SUPPRESS)
    parser.add_argument("--out", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child_main(
            args.child, args.epoch, _parse_addrs(args.addrs), args.out,
            args.seed, args.codec,
        )
    if args.backend == "sim":
        return run_sim_demo(seed=args.seed)
    return run_asyncio_demo(seed=args.seed, out_dir=args.out_dir, codec=args.codec)


if __name__ == "__main__":
    raise SystemExit(main())
